"""Segmented log: rotation, fsync policies, and crash recovery."""

import os
import time

import pytest

from repro.store.records import pack_record
from repro.store.wal import (
    SegmentedLog,
    list_segments,
    parse_fsync_policy,
    segment_filename,
)


def _fill(log, n, start=0):
    for i in range(start, start + n):
        log.append(f"blob-{i}".encode(), i % 5)


class TestFsyncPolicy:
    def test_parse_always_never(self):
        assert parse_fsync_policy("always").mode == "always"
        assert parse_fsync_policy("never").mode == "never"
        assert parse_fsync_policy("ALWAYS").mode == "always"

    def test_parse_interval(self):
        policy = parse_fsync_policy("interval:250")
        assert policy.mode == "interval"
        assert policy.interval_s == pytest.approx(0.25)
        assert policy.spec() == "interval:250"

    @pytest.mark.parametrize("bad", ["", "sometimes", "interval",
                                     "interval:", "interval:-5",
                                     "interval:zero", "intervalgarbage:50",
                                     "interval_flush:50", "always:5"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_fsync_policy(bad)

    def test_policy_objects_pass_through(self):
        policy = parse_fsync_policy("never")
        assert parse_fsync_policy(policy) is policy


class TestRotation:
    def test_segments_rotate_at_boundary(self, tmp_path):
        log = SegmentedLog(str(tmp_path), segment_records=4, fsync="never")
        _fill(log, 10)
        log.close()
        names = [name for _, name in list_segments(str(tmp_path))]
        assert names == [segment_filename(0), segment_filename(1),
                         segment_filename(2)]
        # Sealed segments hold exactly segment_records records; the tail
        # holds the remainder.
        sizes = [os.path.getsize(tmp_path / n) for n in names]
        assert sizes[0] == sizes[1] > 0  # 4 records each (same blobs sizes differ)

    def test_indices_are_sequential(self, tmp_path):
        log = SegmentedLog(str(tmp_path), segment_records=3, fsync="never")
        indices = [log.append(b"x", 0) for _ in range(7)]
        assert indices == list(range(7))
        assert log.record_count == 7
        log.close()

    def test_append_after_close_fails(self, tmp_path):
        log = SegmentedLog(str(tmp_path), fsync="never")
        log.close()
        with pytest.raises(ValueError):
            log.append(b"x", 0)


class TestRecovery:
    def test_reopen_recovers_all_records(self, tmp_path):
        log = SegmentedLog(str(tmp_path), segment_records=4, fsync="always")
        _fill(log, 11)
        log.close()
        log2 = SegmentedLog(str(tmp_path), segment_records=4, fsync="never")
        records = log2.recovered_records()
        assert [r.blob for r in records] == [f"blob-{i}".encode()
                                             for i in range(11)]
        assert [r.sender_uid for r in records] == [i % 5 for i in range(11)]
        assert log2.record_count == 11
        # Appends continue in the recovered tail segment.
        assert log2.append(b"new", 9) == 11
        log2.close()

    def test_recovered_records_consumed_once(self, tmp_path):
        log = SegmentedLog(str(tmp_path), fsync="never")
        _fill(log, 3)
        log.close()
        log2 = SegmentedLog(str(tmp_path), fsync="never")
        assert len(log2.recovered_records()) == 3
        assert log2.recovered_records() == []
        log2.close()

    def test_torn_tail_truncated(self, tmp_path):
        log = SegmentedLog(str(tmp_path), segment_records=4, fsync="always")
        _fill(log, 6)
        log.close()
        tail = tmp_path / segment_filename(1)
        size = os.path.getsize(tail)
        with open(tail, "r+b") as fh:
            fh.truncate(size - 3)  # tear the last record
        log2 = SegmentedLog(str(tmp_path), segment_records=4, fsync="never")
        assert log2.record_count == 5
        assert log2.recovery.truncated_bytes > 0
        # The file itself was repaired, and the next append reuses slot 5.
        assert log2.append(b"replacement", 1) == 5
        log2.close()
        log3 = SegmentedLog(str(tmp_path), segment_records=4, fsync="never")
        assert [r.blob for r in log3.recovered_records()][-1] == b"replacement"
        assert log3.recovery.truncated_bytes == 0
        log3.close()

    def test_segments_after_damage_are_orphaned(self, tmp_path):
        log = SegmentedLog(str(tmp_path), segment_records=2, fsync="always")
        _fill(log, 6)  # three full segments
        log.close()
        middle = tmp_path / segment_filename(1)
        data = middle.read_bytes()
        # Mid-log damage with *torn* evidence (cut inside a record).
        middle.write_bytes(data[:len(data) // 2 + 3])
        log2 = SegmentedLog(str(tmp_path), segment_records=2, fsync="never")
        # Longest valid prefix: segment 0 plus what survived of segment 1;
        # the full segment 2 after the damage is set aside, not stitched.
        assert log2.record_count < 4
        assert log2.recovery.truncated_bytes == 3
        assert log2.recovery.orphaned_segments == 1
        orphans = [n for n in os.listdir(tmp_path) if n.endswith(".orphan")]
        assert orphans == [segment_filename(2) + ".orphan"]
        log2.close()

    def test_cleanly_short_non_final_segment_refuses_without_manifest(
            self, tmp_path):
        # A dir written with segment_records=2 reopened with 4 looks like
        # "short segment 0 with followers, zero torn bytes" — that is
        # indistinguishable from a misconfigured reopen, and orphaning
        # the followers would discard durable records.  Refuse instead.
        log = SegmentedLog(str(tmp_path), segment_records=2, fsync="never")
        _fill(log, 6)
        log.close()
        with pytest.raises(ValueError, match="segmentation"):
            SegmentedLog(str(tmp_path), segment_records=4, fsync="never")
        # The right configuration still opens everything.
        good = SegmentedLog(str(tmp_path), segment_records=2, fsync="never")
        assert good.record_count == 6
        good.close()

    def test_sequence_gap_is_orphaned(self, tmp_path):
        log = SegmentedLog(str(tmp_path), segment_records=2, fsync="never")
        _fill(log, 2)
        log.close()
        # A stray future segment (e.g. from a mis-restored backup).
        (tmp_path / segment_filename(5)).write_bytes(pack_record(b"stray", 1))
        log2 = SegmentedLog(str(tmp_path), segment_records=2, fsync="never")
        assert log2.record_count == 2
        assert log2.recovery.orphaned_segments == 1
        log2.close()

    def test_trusted_prefix_skips_crc(self, tmp_path):
        log = SegmentedLog(str(tmp_path), segment_records=2, fsync="always")
        _fill(log, 4)
        log.close()
        # Corrupt a blob byte in sealed segment 0 *without* touching the
        # framing: a trusting open must not notice, a verifying one must.
        seg0 = tmp_path / segment_filename(0)
        data = bytearray(seg0.read_bytes())
        data[-1] ^= 0xFF
        seg0.write_bytes(bytes(data))
        verifying = SegmentedLog(str(tmp_path), segment_records=2,
                                 fsync="never")
        assert verifying.record_count < 4
        verifying.close()


class TestFailedAppendRollback:
    def test_fsync_failure_rolls_back_completely(self, tmp_path, monkeypatch):
        import repro.store.wal as wal_module

        log = SegmentedLog(str(tmp_path), segment_records=4, fsync="always")
        log.append(b"good", 1)
        real_fsync = os.fsync

        def failing_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(wal_module.os, "fsync", failing_fsync)
        with pytest.raises(OSError):
            log.append(b"doomed", 2)
        monkeypatch.setattr(wal_module.os, "fsync", real_fsync)
        # The failed append left no trace: count unchanged, next append
        # takes the same index, and nothing of the doomed record is on
        # disk after reopen.
        assert log.record_count == 1
        assert log.append(b"retry", 3) == 1
        log.close()
        reopened = SegmentedLog(str(tmp_path), segment_records=4,
                                fsync="never")
        assert [r.blob for r in reopened.recovered_records()] == [
            b"good", b"retry"
        ]
        assert reopened.recovery.truncated_bytes == 0
        reopened.close()


class TestIntervalFlusher:
    def test_background_flush_clears_dirty(self, tmp_path):
        log = SegmentedLog(str(tmp_path), fsync="interval:20")
        log.append(b"payload", 1)
        deadline = time.monotonic() + 2.0
        while log._dirty and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not log._dirty, "flusher never ran"
        log.close()

    def test_explicit_flush_any_policy(self, tmp_path):
        log = SegmentedLog(str(tmp_path), fsync="never")
        log.append(b"payload", 1)
        log.flush()
        assert not log._dirty
        log.close()
