"""Per-stage tracing: RequestTrace, the slow-request log, WAL fsync timing."""

import logging
import random
import re
import time

import pytest

from repro.client.endpoints import SocketEndpoint
from repro.crypto.userid import UserIdAuthority
from repro.obs import (
    ALL_STAGES,
    STAGE_CRYPTO,
    STAGE_VALIDATE,
    STAGE_WAL_FSYNC,
    RequestTrace,
)
from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock


class TestRequestTrace:
    def test_stamps_accumulate(self):
        trace = RequestTrace()
        trace.stamp(STAGE_VALIDATE, 0.001)
        trace.stamp(STAGE_VALIDATE, 0.002)
        assert trace.stages[STAGE_VALIDATE] == pytest.approx(0.003)

    def test_breakdown_follows_pipeline_order(self):
        trace = RequestTrace()
        # Stamp in reverse; breakdown must render in pipeline order.
        for stage in reversed(ALL_STAGES):
            trace.stamp(stage, 0.001)
        rendered = trace.breakdown()
        positions = [rendered.index(f"{stage}=") for stage in ALL_STAGES]
        assert positions == sorted(positions)

    def test_breakdown_skips_untouched_stages(self):
        trace = RequestTrace()
        trace.stamp(STAGE_VALIDATE, 0.0015)
        rendered = trace.breakdown()
        assert "validate=1.50ms" in rendered
        assert "crypto" not in rendered


class TestServerSideTracing:
    def test_process_add_stamps_validate_and_crypto(self, shared_factory):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(3)),
            clock=ManualClock(start=1_000_000.0),
        )
        token = server.issue_user_token()
        trace = RequestTrace()
        outcome = server.process_add(shared_factory.make_valid().to_bytes(),
                                     token, trace=trace)
        assert outcome.accepted
        assert trace.stages[STAGE_VALIDATE] > 0.0
        # Cache-cold token: the crypto sub-stage was stamped too, and it
        # is contained within validate.
        assert 0.0 < trace.stages[STAGE_CRYPTO] <= trace.stages[STAGE_VALIDATE]
        # Cache-warm repeat: no new crypto stamp.
        trace2 = RequestTrace()
        server.process_add(shared_factory.make_valid().to_bytes(), token,
                           trace=trace2)
        assert STAGE_CRYPTO not in trace2.stages

    def test_durable_add_stamps_wal_fsync(self, shared_factory, tmp_path):
        server = CommunixServer(
            config=ServerConfig(data_dir=str(tmp_path), fsync_policy="always"),
            authority=UserIdAuthority(rng=random.Random(3)),
            clock=ManualClock(start=1_000_000.0),
        )
        try:
            trace = RequestTrace()
            outcome = server.process_add(
                shared_factory.make_valid().to_bytes(),
                server.issue_user_token(), trace=trace,
            )
            assert outcome.accepted
            assert trace.stages[STAGE_WAL_FSYNC] > 0.0
            wire = server.metrics.snapshot()["histograms"]["stage.wal_fsync"]
            assert wire["count"] == 1
        finally:
            server.close()

    def test_disabled_metrics_still_trace(self, shared_factory):
        # --no-metrics with --slow-request-ms: no histograms, but a trace
        # handed in is still stamped (the slow log keeps working).
        server = CommunixServer(
            config=ServerConfig(metrics_enabled=False),
            authority=UserIdAuthority(rng=random.Random(3)),
        )
        trace = RequestTrace()
        outcome = server.process_add(shared_factory.make_valid().to_bytes(),
                                     server.issue_user_token(), trace=trace)
        assert outcome.accepted
        assert trace.stages[STAGE_VALIDATE] > 0.0
        assert server.metrics.snapshot()["histograms"] == {}


class TestSlowRequestLog:
    @pytest.fixture
    def slow_server(self):
        server = CommunixServer(
            config=ServerConfig(slow_request_ms=0.0001),
            authority=UserIdAuthority(rng=random.Random(11)),
            clock=ManualClock(start=1_000_000.0),
        )
        transport = ServerTransport(server)
        host, port = transport.start()
        endpoint = SocketEndpoint((host, port))
        yield server, endpoint
        endpoint.close()
        transport.stop()

    def test_slow_requests_logged_with_breakdown(self, slow_server,
                                                 shared_factory, caplog):
        server, endpoint = slow_server
        with caplog.at_level(logging.WARNING, logger="repro.server.transport"):
            token = endpoint.issue_token()
            assert endpoint.add(shared_factory.make_valid().to_bytes(), token)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if any("slow request" in r.message for r in caplog.records):
                    break
                time.sleep(0.01)
        slow = [r for r in caplog.records if "slow request" in r.message]
        assert slow, "0.0001ms threshold must flag every request"
        add_lines = [r.message for r in slow if "op=ADD" in r.message]
        assert add_lines
        assert "validate=" in add_lines[0]
        assert "total=" in add_lines[0]
        assert server.metrics.snapshot()["counters"]["net.slow_requests"] >= 1
        # Every slow line carries the request's trace id, and that id
        # resolves in the server's slow-trace ring (the /traces source).
        match = re.search(r"trace=([0-9a-f]{16})", add_lines[0])
        assert match, add_lines[0]
        found = server.traces.find(match.group(1))
        assert found is not None
        assert found["op"] == "ADD"
        assert "validate" in found["stages_ms"]

    def test_threshold_zero_never_logs(self, shared_factory, caplog):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(11)),
            clock=ManualClock(start=1_000_000.0),
        )
        transport = ServerTransport(server)
        host, port = transport.start()
        endpoint = SocketEndpoint((host, port))
        try:
            with caplog.at_level(logging.WARNING,
                                 logger="repro.server.transport"):
                token = endpoint.issue_token()
                assert endpoint.add(shared_factory.make_valid().to_bytes(),
                                    token)
                endpoint.stats()
            assert not [r for r in caplog.records
                        if "slow request" in r.message]
        finally:
            endpoint.close()
            transport.stop()


class TestLoopProbes:
    def test_loop_and_flush_instruments_populate(self, shared_factory):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(13)),
            clock=ManualClock(start=1_000_000.0),
        )
        transport = ServerTransport(server)
        host, port = transport.start()
        endpoint = SocketEndpoint((host, port))
        try:
            for _ in range(3):
                token = endpoint.issue_token()
                assert endpoint.add(shared_factory.make_valid().to_bytes(),
                                    token)
            snap = server.metrics.snapshot()
        finally:
            endpoint.close()
            transport.stop()
        histograms = snap["histograms"]
        assert histograms["loop.select_wait"]["count"] > 0
        assert histograms["loop.lag"]["count"] > 0
        assert histograms["stage.flush"]["count"] >= 1
        assert histograms["stage.queue_wait"]["count"] >= 1
        assert snap["counters"]["loop.iterations"] > 0
        assert snap["counters"]["net.accepts"] == 1
        gauges = snap["gauges"]
        for name in ("net.connections", "workers.queue_depth",
                     "workers.queue_time", "bufpool.allocated", "db.size"):
            assert name in gauges
        # FD budget gauges come from /proc + RLIMIT_NOFILE; both must be
        # live values, not placeholders.
        assert gauges["proc.fd_open"] > 0
        assert gauges["proc.fd_limit"] > 0

    def test_event_loop_health_tick_records_drift(self, shared_factory):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(13)),
            clock=ManualClock(start=1_000_000.0),
        )
        transport = ServerTransport(server)
        host, port = transport.start()
        endpoint = SocketEndpoint((host, port))
        try:
            endpoint.stats()
            # The health tick fires every 0.25 s of loop wall time;
            # wait out one tick and poke the loop again.
            deadline = time.monotonic() + 5.0
            drift = None
            while time.monotonic() < deadline:
                time.sleep(0.1)
                endpoint.stats()
                snap = server.metrics.snapshot()
                drift = snap["histograms"].get("loop.timer_drift")
                if drift is not None and drift["count"] > 0:
                    break
            assert drift is not None and drift["count"] > 0
            # An idle loop never drifts by the 100 ms stall threshold.
            assert snap["counters"].get("loop.stalls", 0) == 0
        finally:
            endpoint.close()
            transport.stop()

    def test_stage_histograms_carry_trace_exemplars(self, shared_factory):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(13)),
            clock=ManualClock(start=1_000_000.0),
        )
        transport = ServerTransport(server)
        host, port = transport.start()
        endpoint = SocketEndpoint((host, port))
        try:
            token = endpoint.issue_token()
            assert endpoint.add(shared_factory.make_valid().to_bytes(), token)
            snap = server.metrics.snapshot()
        finally:
            endpoint.close()
            transport.stop()
        wire = snap["histograms"]["stage.handler"]
        exemplars = wire.get("exemplars", {})
        assert exemplars, "handler histogram must keep a trace per bucket"
        # The exemplar is the trace id of a request that landed in that
        # bucket; it resolves in the server's slow-trace ring.
        trace_id = next(iter(exemplars.values()))
        assert re.fullmatch(r"[0-9a-f]{16}", trace_id)
        assert server.traces.find(trace_id) is not None
