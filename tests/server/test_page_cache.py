"""Response-level cache for hot paginated GET pages (database layer)."""

import threading

import pytest

from repro.server.database import SignatureDatabase, _PageCache
from repro.server.protocol import decode_get_page, encode_get_page_response


def fill(db, factory, n, uid_start=0):
    sigs = []
    for i in range(n):
        sig = factory.make_valid()
        db.append(sig, sig.to_bytes(), uid_start + i)
        sigs.append(sig)
    return sigs


def frame(db, start, max_count):
    """The complete wire frame the transport would send for this page."""
    next_index, count, chunks, more = db.wire_from(start, max_count)
    return encode_get_page_response(next_index, count, chunks, more)


def uncached_frame(db, start, max_count):
    """The same frame computed straight from the segments (no page cache)."""
    next_index, count, chunks, more = db._wire_range(start, max_count)
    return encode_get_page_response(next_index, count, chunks, more)


class TestPageCache:
    def test_hot_page_is_a_cache_hit_with_identical_bytes(self, shared_factory):
        db = SignatureDatabase(segment_size=4)
        fill(db, shared_factory, 10)
        first = frame(db, 0, 4)
        hits_before = db.page_cache_hits
        second = frame(db, 0, 4)
        assert second == first
        assert db.page_cache_hits == hits_before + 1
        # The cached answer reuses the identical chunk objects (no rebuild).
        assert db.wire_from(0, 4)[2] is db.wire_from(0, 4)[2]

    def test_append_invalidates_and_frames_stay_byte_identical(
            self, shared_factory):
        """The satellite contract: frames served through the cache are
        byte-identical to uncached computation both before and after an
        append-driven invalidation."""
        db = SignatureDatabase(segment_size=4)
        reference = SignatureDatabase(segment_size=4)
        sigs = fill(db, shared_factory, 6)
        for i, sig in enumerate(sigs):
            reference.append(sig, sig.to_bytes(), i)

        # Warm the cache, then check against a never-cached computation.
        warm = frame(db, 4, 4)
        assert frame(db, 4, 4) == warm  # hit
        assert warm == uncached_frame(reference, 4, 4)

        # Append: the tail page's answer changes and must be recomputed.
        extra = fill(db, shared_factory, 1, uid_start=100)
        for sig in extra:
            reference.append(sig, sig.to_bytes(), 100)
        after = frame(db, 4, 4)
        assert after != warm
        next_index, blobs, more = decode_get_page(after)
        assert (next_index, len(blobs), more) == (7, 3, False)
        assert after == uncached_frame(reference, 4, 4)

    def test_more_flag_flips_after_append(self, shared_factory):
        db = SignatureDatabase(segment_size=4)
        fill(db, shared_factory, 4)
        assert db.wire_from(0, 4)[3] is False  # cached with more=False
        fill(db, shared_factory, 1, uid_start=50)
        assert db.wire_from(0, 4)[3] is True   # invalidated, recomputed

    def test_unpaginated_get_bypasses_the_page_cache(self, shared_factory):
        db = SignatureDatabase(segment_size=4)
        fill(db, shared_factory, 6)
        misses_before = db.page_cache_misses
        hits_before = db.page_cache_hits
        db.wire_from(0)
        db.wire_from(0)
        assert db.page_cache_misses == misses_before
        assert db.page_cache_hits == hits_before

    def test_capacity_is_bounded_fifo(self, shared_factory):
        db = SignatureDatabase(segment_size=2, page_cache_capacity=3)
        fill(db, shared_factory, 10)
        for start in range(5):
            db.wire_from(start, 2)
        assert len(db._page_cache._entries) == 3
        # The oldest key was evicted; re-reading it is a miss again.
        misses_before = db.page_cache_misses
        db.wire_from(0, 2)
        assert db.page_cache_misses == misses_before + 1

    def test_stale_put_after_invalidation_is_dropped(self):
        cache = _PageCache()
        version = cache.version
        cache.invalidate()  # an append landed mid-computation
        cache.put((0, 4), (4, 4, (), False), version)
        assert cache.get((0, 4)) is None

    def test_concurrent_appends_never_serve_stale_pages(self, shared_factory):
        """Readers hammering one page while a writer appends must always
        see a frame consistent with some published database size."""
        db = SignatureDatabase(segment_size=4)
        fill(db, shared_factory, 4)
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                next_index, count, chunks, more = db.wire_from(0, 4)
                frame_bytes = encode_get_page_response(
                    next_index, count, chunks, more
                )
                decoded_next, blobs, _ = decode_get_page(frame_bytes)
                if len(blobs) != count or decoded_next != next_index:
                    bad.append((len(blobs), count))  # pragma: no cover

        threads = [threading.Thread(target=reader, daemon=True)
                   for _ in range(2)]
        for t in threads:
            t.start()
        try:
            fill(db, shared_factory, 30, uid_start=200)
        finally:
            stop.set()
            for t in threads:
                t.join(5.0)
        assert not bad
