"""Signature database tests."""

import threading

from repro.server.database import SignatureDatabase


def store(db, factory, uid=1, n=1):
    out = []
    for _ in range(n):
        sig = factory.make_valid()
        out.append(db.append(sig, sig.to_bytes(), uid))
    return out


class TestAppend:
    def test_indices_sequential(self, shared_factory):
        db = SignatureDatabase()
        indices = store(db, shared_factory, n=3)
        assert indices == [0, 1, 2]
        assert len(db) == 3
        assert db.next_index == 3

    def test_duplicate_returns_existing_index(self, shared_factory):
        db = SignatureDatabase()
        sig = shared_factory.make_valid()
        first = db.append(sig, sig.to_bytes(), 1)
        second = db.append(sig, sig.to_bytes(), 2)
        assert first == second
        assert len(db) == 1

    def test_contains(self, shared_factory):
        db = SignatureDatabase()
        sig = shared_factory.make_valid()
        db.append(sig, sig.to_bytes(), 1)
        assert db.contains(sig.sig_id)
        assert not db.contains("nope")


class TestPublishListeners:
    def test_listener_fires_per_published_entry(self, shared_factory):
        db = SignatureDatabase()
        fired = []
        db.add_publish_listener(lambda: fired.append(len(db)))
        store(db, shared_factory, n=3)
        # Fired after _count advanced: each callback saw the new entry.
        assert fired == [1, 2, 3]

    def test_duplicate_append_does_not_notify(self, shared_factory):
        db = SignatureDatabase()
        fired = []
        db.add_publish_listener(lambda: fired.append(True))
        sig = shared_factory.make_valid()
        db.append(sig, sig.to_bytes(), 1)
        db.append(sig, sig.to_bytes(), 2)  # dedup: nothing new published
        assert fired == [True]

    def test_apply_replicated_notifies(self, shared_factory):
        source = SignatureDatabase()
        store(source, shared_factory, n=2)
        replica = SignatureDatabase()
        fired = []
        replica.add_publish_listener(lambda: fired.append(len(replica)))
        for i in range(2):
            entry = source.entry(i)
            replica.apply_replicated(entry.index, entry.blob,
                                     entry.sender_uid)
        assert fired == [1, 2]

    def test_failing_listener_does_not_poison_appends(self, shared_factory):
        db = SignatureDatabase()

        def bad():
            raise RuntimeError("boom")

        fired = []
        db.add_publish_listener(bad)
        db.add_publish_listener(lambda: fired.append(True))
        store(db, shared_factory, n=2)
        assert fired == [True, True]
        assert len(db) == 2


class TestGet:
    def test_blobs_from_zero(self, shared_factory):
        db = SignatureDatabase()
        store(db, shared_factory, n=4)
        next_index, blobs = db.blobs_from(0)
        assert next_index == 4
        assert len(blobs) == 4

    def test_incremental_get(self, shared_factory):
        db = SignatureDatabase()
        store(db, shared_factory, n=4)
        next_index, blobs = db.blobs_from(2)
        assert next_index == 4
        assert len(blobs) == 2

    def test_get_past_end_empty(self, shared_factory):
        db = SignatureDatabase()
        store(db, shared_factory, n=2)
        next_index, blobs = db.blobs_from(10)
        assert blobs == []
        assert next_index == 2

    def test_negative_start_clamped(self, shared_factory):
        db = SignatureDatabase()
        store(db, shared_factory, n=2)
        _, blobs = db.blobs_from(-5)
        assert len(blobs) == 2

    def test_blobs_are_original_bytes(self, shared_factory):
        db = SignatureDatabase()
        sig = shared_factory.make_valid()
        blob = sig.to_bytes()
        db.append(sig, blob, 1)
        _, blobs = db.blobs_from(0)
        assert blobs[0] == blob


class TestUserIndex:
    def test_user_top_frames_tracked(self, shared_factory):
        db = SignatureDatabase()
        store(db, shared_factory, uid=1, n=2)
        store(db, shared_factory, uid=2, n=1)
        assert len(db.user_top_frames(1)) == 2
        assert len(db.user_top_frames(2)) == 1
        assert db.user_top_frames(99) == []


class TestConcurrency:
    def test_parallel_appends_consistent(self, shared_factory):
        db = SignatureDatabase()
        sigs = [shared_factory.make_valid() for _ in range(40)]

        def add(batch):
            for sig in batch:
                db.append(sig, sig.to_bytes(), 1)

        threads = [
            threading.Thread(target=add, args=(sigs[i::4],)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        unique = len({s.sig_id for s in sigs})
        assert len(db) == unique
        next_index, blobs = db.blobs_from(0)
        assert next_index == unique == len(blobs)
