"""The --admin-addr observability plane: plaintext HTTP on the event loop."""

import json
import random
import socket

import pytest

from repro.client.endpoints import SocketEndpoint
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock


def http_get(host: str, port: int, target: str, method: str = "GET",
             timeout: float = 5.0) -> tuple[int, dict, bytes]:
    """Minimal HTTP/1.0 round-trip: (status, headers, body)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(f"{method} {target} HTTP/1.0\r\n"
                     f"Host: {host}\r\n\r\n".encode("ascii"))
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


@pytest.fixture
def plane(shared_factory):
    server = CommunixServer(
        config=ServerConfig(),
        authority=UserIdAuthority(rng=random.Random(9)),
        clock=ManualClock(start=1_000_000.0),
    )
    transport = ServerTransport(
        server, admin_endpoints=["tcp://127.0.0.1:0"]
    )
    host, port = transport.start()
    admin = transport.bound_admin_endpoints[0]
    endpoint = SocketEndpoint((host, port))
    token = endpoint.issue_token()
    assert endpoint.add(shared_factory.make_valid().to_bytes(), token)
    yield server, endpoint, admin.host, admin.port
    endpoint.close()
    transport.stop()


class TestAdminEndpoints:
    def test_metrics_is_prometheus_text(self, plane):
        _, _, host, port = plane
        status, headers, body = http_get(host, port, "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert int(headers["content-length"]) == len(body)
        text = body.decode()
        assert "communix_adds_accepted_total 1" in text
        assert "# TYPE communix_stage_validate_seconds summary" in text
        assert 'communix_stage_validate_seconds{quantile="0.99"}' in text

    def test_stats_is_v2_json(self, plane):
        server, _, host, port = plane
        status, headers, body = http_get(host, port, "/stats")
        assert status == 200
        assert headers["content-type"] == "application/json"
        payload = json.loads(body)
        assert payload["version"] == 2
        assert payload["adds_accepted"] == 1
        assert payload["metrics"]["histograms"]["stage.validate"]["count"] == 1

    def test_healthz(self, plane):
        _, _, host, port = plane
        status, _, body = http_get(host, port, "/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_unknown_path_404(self, plane):
        _, _, host, port = plane
        status, _, _ = http_get(host, port, "/nope")
        assert status == 404

    def test_non_get_405(self, plane):
        _, _, host, port = plane
        status, _, _ = http_get(host, port, "/metrics", method="POST")
        assert status == 405

    def test_scrape_reconciles_with_request_counts(self, plane, shared_factory):
        server, endpoint, host, port = plane
        for _ in range(4):
            token = endpoint.issue_token()
            assert endpoint.add(shared_factory.make_valid().to_bytes(), token)
        endpoint.get(0)
        _, _, body = http_get(host, port, "/metrics")
        metrics = {}
        for line in body.decode().splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            metrics[name] = float(value)
        assert metrics["communix_adds_accepted_total"] == 5
        assert metrics["communix_gets_served_total"] == 1
        assert metrics["communix_stage_db_append_seconds_count"] == 5
        assert metrics["communix_stage_flush_seconds_count"] >= 5

    def test_admin_requests_counted(self, plane):
        server, _, host, port = plane
        http_get(host, port, "/healthz")
        http_get(host, port, "/metrics")
        snap = server.metrics.snapshot()
        assert snap["counters"]["net.admin_requests"] >= 2

    def test_oversized_request_is_dropped(self, plane):
        _, _, host, port = plane
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(b"GET /" + b"a" * 9000 + b" HTTP/1.0\r\n")
            # The 8 KB cap closes the connection without a response.
            sock.settimeout(5.0)
            assert sock.recv(65536) == b""

    def test_connection_closes_after_response(self, plane):
        _, _, host, port = plane
        status, headers, _ = http_get(host, port, "/healthz")
        assert status == 200
        assert headers.get("connection") == "close"


class TestTracesEndpoint:
    def test_traces_lists_slowest_and_exemplars(self, plane):
        _, _, host, port = plane
        status, headers, body = http_get(host, port, "/traces")
        assert status == 200
        assert headers["content-type"] == "application/json"
        payload = json.loads(body)
        traces = payload["traces"]
        assert traces, "the fixture's ADD must be retained"
        assert traces == sorted(traces, key=lambda t: t["total_ms"],
                                reverse=True)
        entry = traces[0]
        assert len(entry["trace_id"]) == 16
        assert entry["total_ms"] > 0.0
        assert "handler" in entry["stages_ms"]
        # The exemplar section maps histogram -> bucket -> trace id.
        exemplars = payload["exemplars"]
        assert "stage.handler" in exemplars

    def test_exemplar_trace_id_resolves(self, plane):
        # The acceptance loop for CI: take the slowest handler bucket's
        # exemplar, look it up by id, and get the full stage breakdown.
        _, _, host, port = plane
        _, _, body = http_get(host, port, "/traces")
        payload = json.loads(body)
        buckets = payload["exemplars"]["stage.handler"]
        trace_id = buckets[max(buckets, key=int)]
        status, _, body = http_get(host, port, f"/traces?id={trace_id}")
        assert status == 200
        found = json.loads(body)["trace"]
        assert found["trace_id"] == trace_id
        assert found["stages_ms"]

    def test_unknown_trace_id_404(self, plane):
        _, _, host, port = plane
        status, _, body = http_get(host, port, "/traces?id=" + "0" * 16)
        assert status == 404
        assert body == b"trace not found\n"


class TestAdminIsolation:
    def test_no_admin_endpoints_by_default(self):
        server = CommunixServer(authority=UserIdAuthority(rng=random.Random(1)))
        transport = ServerTransport(server)
        transport.start()
        try:
            assert transport.bound_admin_endpoints == []
        finally:
            transport.stop()

    def test_framed_protocol_still_served_on_main_endpoint(self, plane,
                                                           shared_factory):
        # The admin listener must not leak HTTP handling into the framed
        # protocol port (and vice versa: HTTP on the main port is just a
        # malformed frame, already covered by transport tests).
        _, endpoint, _, _ = plane
        token = endpoint.issue_token()
        assert endpoint.add(shared_factory.make_valid().to_bytes(), token)
        assert endpoint.stats()["version"] == 2
