"""Durability wiring: database + server write-through, replay, restarts."""

import random

import pytest

from repro.core.signature import ORIGIN_REMOTE, DeadlockSignature
from repro.loadgen.signatures import random_signature
from repro.server.database import SignatureDatabase
from repro.server.server import CommunixServer, ServerConfig
from repro.store import SignatureStore


@pytest.fixture(scope="module")
def signatures():
    rng = random.Random(1107)
    return [random_signature(rng) for _ in range(30)]


def _config(tmp_path, **overrides):
    defaults = dict(
        data_dir=str(tmp_path / "data"),
        fsync_policy="always",
        checkpoint_every=8,
        max_signatures_per_user_per_day=10_000,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestDatabaseWriteThrough:
    def test_appends_reach_the_log(self, tmp_path, signatures):
        store = SignatureStore(str(tmp_path), fsync="always")
        db = SignatureDatabase(store=store)
        for i, sig in enumerate(signatures[:5]):
            assert db.append(sig, sig.to_bytes(), 1) == i
        assert store.record_count == 5
        store.close()

    def test_duplicates_are_not_relogged(self, tmp_path, signatures):
        store = SignatureStore(str(tmp_path), fsync="never")
        db = SignatureDatabase(store=store)
        sig = signatures[0]
        assert db.append(sig, sig.to_bytes(), 1) == 0
        assert db.append(sig, sig.to_bytes(), 2) == 0  # dup: same index
        assert store.record_count == 1
        store.close()

    def test_replay_rebuilds_full_state(self, tmp_path, signatures):
        store = SignatureStore(str(tmp_path), fsync="always",
                               segment_records=4)
        db = SignatureDatabase(store=store, segment_size=4)
        for i, sig in enumerate(signatures[:10]):
            db.append(sig, sig.to_bytes(), i % 2 + 1)
        store.close()

        reopened = SignatureStore(str(tmp_path), segment_records=4)
        db2 = SignatureDatabase(store=reopened, segment_size=4)
        assert len(db2) == 10
        assert db2.replayed_count == 10
        assert db2.segment_count == db.segment_count
        # Bytes served are identical, chunk for chunk.
        assert db2.wire_from(0) == db.wire_from(0)
        assert db2.blobs_page(3, 4) == db.blobs_page(3, 4)
        # Dedup map and adjacency index rebuilt.
        assert db2.contains(signatures[0].sig_id)
        assert db2.user_top_frames(1) == db.user_top_frames(1)
        assert db2.user_top_frames(2) == db.user_top_frames(2)
        # New appends continue at the right index, hitting the log.
        sig = signatures[10]
        assert db2.append(sig, sig.to_bytes(), 5) == 10
        assert reopened.record_count == 11
        reopened.close()

    def test_duplicate_log_records_replay_without_index_drift(
            self, tmp_path, signatures):
        # A healthy writer never logs duplicates, but replay must keep
        # database indices == log indices even if one shows up (e.g. a
        # record re-flushed across a botched crash): both copies load and
        # the next append still lands on the right index.
        from repro.store.wal import SegmentedLog

        blob = signatures[0].to_bytes()
        log = SegmentedLog(str(tmp_path), fsync="never")
        log.append(blob, 1)
        log.append(blob, 2)  # the duplicate
        log.close()
        store = SignatureStore(str(tmp_path), fsync="never")
        db = SignatureDatabase(store=store)
        assert len(db) == 2
        assert db.replayed_count == 2
        sig = signatures[1]
        assert db.append(sig, sig.to_bytes(), 3) == 2
        assert store.record_count == 3
        store.close()

    def test_failed_store_append_leaves_memory_unchanged(
            self, tmp_path, signatures):
        class ExplodingStore:
            def append(self, *a, **k):
                raise OSError("disk full")

            def recovered_entries(self):
                return []

        db = SignatureDatabase(store=ExplodingStore())
        sig = signatures[0]
        with pytest.raises(OSError):
            db.append(sig, sig.to_bytes(), 1)
        assert len(db) == 0
        assert not db.contains(sig.sig_id)


class TestServerRestart:
    def test_acked_adds_survive_reopen(self, tmp_path, signatures):
        config = _config(tmp_path)
        server = CommunixServer(config=config)
        token = server.issue_user_token()
        acked = []
        for sig in signatures[:12]:
            outcome = server.process_add(sig.to_bytes(), token)
            assert outcome.accepted
            acked.append(outcome.index)
        server.close()

        restarted = CommunixServer(config=config)
        next_index, blobs = restarted.process_get(0)
        assert next_index == 12
        assert blobs == [sig.to_bytes() for sig in signatures[:12]]
        restarted.close()

    def test_restart_preserves_uid_sequence_and_adjacency(
            self, tmp_path, signatures):
        config = _config(tmp_path)
        server = CommunixServer(config=config)
        token = server.issue_user_token()  # uid 1
        uid = server.authority.decode(token).user_id
        server.process_add(signatures[0].to_bytes(), token)
        server.close()

        restarted = CommunixServer(config=config)
        # The pre-crash user's uid is not re-issued to a newcomer...
        new_uid = restarted.authority.decode(
            restarted.issue_user_token()
        ).user_id
        assert new_uid > uid
        # ...and their adjacency history survived: an adjacent signature
        # from the *same* user is still rejected.
        sig = DeadlockSignature.from_bytes(signatures[0].to_bytes(),
                                           origin=ORIGIN_REMOTE)
        assert restarted.database.user_top_frames(uid) == [sig.top_frames]
        restarted.close()

    def test_restart_preserves_dedup(self, tmp_path, signatures):
        config = _config(tmp_path)
        server = CommunixServer(config=config)
        token = server.issue_user_token()
        first = server.process_add(signatures[0].to_bytes(), token)
        server.close()

        restarted = CommunixServer(config=config)
        token2 = restarted.issue_user_token()
        again = restarted.process_add(signatures[0].to_bytes(), token2)
        # Same content hash: same index, not stored twice.
        assert again.verdict in ("ok", "duplicate")
        assert len(restarted.database) == 1
        assert again.index in (first.index, None)
        restarted.close()

    def test_store_error_rejects_instead_of_acking(
            self, tmp_path, signatures):
        config = _config(tmp_path)
        server = CommunixServer(config=config)
        token = server.issue_user_token()
        server.store.close(final_checkpoint=False)  # simulate a dead disk
        outcome = server.process_add(signatures[1].to_bytes(), token)
        assert not outcome.accepted
        assert outcome.verdict == "store_error"
        assert len(server.database) == 0

    def test_store_error_refunds_the_quota_slot(self, tmp_path, signatures):
        config = _config(tmp_path, max_signatures_per_user_per_day=3)
        server = CommunixServer(config=config)
        token = server.issue_user_token()
        uid = server.authority.decode(token).user_id
        server.store.close(final_checkpoint=False)  # disk gone
        # Retrying against a dead disk must not burn the daily allowance:
        # every attempt is store_error (never quota_exceeded), and the
        # slots all come back.
        for _ in range(5):
            outcome = server.process_add(signatures[2].to_bytes(), token)
            assert outcome.verdict == "store_error"
        assert server.quota.used_today(uid) == 0

    def test_memory_only_config_has_no_store(self):
        server = CommunixServer(config=ServerConfig())
        assert server.store is None
        server.flush_store()  # no-ops, never raises
        server.close()
