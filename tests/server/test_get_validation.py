"""GET argument hardening: malformed ``from_index``/``max_count`` must
come back as clean protocol error frames, never as worker-pool crashes."""

import random
import socket as socket_module

import pytest

from repro.crypto.userid import UserIdAuthority
from repro.server.protocol import (
    decode_get_args,
    read_frame,
    write_frame,
)
from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock
from repro.util.encoding import canonical_json, from_canonical_json
from repro.util.errors import ProtocolError


class TestDecodeGetArgs:
    def test_defaults(self):
        assert decode_get_args({"op": "GET"}) == (0, None)

    def test_valid_pagination(self):
        request = {"op": "GET", "from_index": 7, "max_count": 64}
        assert decode_get_args(request) == (7, 64)

    @pytest.mark.parametrize("bad", [-1, -100, 1.5, "3", "abc", True,
                                     False, None, [], {}])
    def test_bad_from_index_rejected(self, bad):
        with pytest.raises(ProtocolError, match="from_index"):
            decode_get_args({"op": "GET", "from_index": bad})

    @pytest.mark.parametrize("bad", [-1, 2.0, "lots", True, [], {}])
    def test_bad_max_count_rejected(self, bad):
        with pytest.raises(ProtocolError, match="max_count"):
            decode_get_args({"op": "GET", "from_index": 0, "max_count": bad})


class TestServerCoreChecks:
    def test_non_integer_from_index_raises_protocol_error(self):
        server = CommunixServer(config=ServerConfig(require_token=False))
        with pytest.raises(ProtocolError, match="from_index"):
            server.process_get_page("3", 10)
        with pytest.raises(ProtocolError, match="from_index"):
            server.process_get_wire(2.5, 10)

    def test_negative_from_index_still_clamped_for_direct_callers(self):
        server = CommunixServer(config=ServerConfig(require_token=False))
        next_index, blobs, more = server.process_get_page(-5, 10)
        assert (next_index, blobs, more) == (0, [], False)


@pytest.fixture
def live_server():
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(33)),
        clock=ManualClock(start=1_000_000.0),
    )
    transport = ServerTransport(server)
    host, port = transport.start()
    yield server, host, port
    transport.stop()


def roundtrip(sock, request: dict) -> dict:
    write_frame(sock, canonical_json(request))
    return from_canonical_json(read_frame(sock))


class TestWireRegression:
    @pytest.mark.parametrize("bad_from", [-1, 1.5, "abc", True])
    def test_bad_from_index_yields_clean_error(self, live_server, bad_from):
        _, host, port = live_server
        sock = socket_module.create_connection((host, port), timeout=5.0)
        try:
            response = roundtrip(
                sock, {"op": "GET", "from_index": bad_from, "max_count": 4}
            )
            assert response["ok"] is False
            assert "from_index" in response["error"]
            # The connection survives: the next well-formed request works.
            follow_up = roundtrip(sock, {"op": "STATS"})
            assert follow_up["ok"] is True
        finally:
            sock.close()

    def test_bad_args_do_not_crash_the_worker_pool(self, live_server):
        """A burst of malformed GETs followed by a valid request on the
        same connection: every response arrives, in order."""
        _, host, port = live_server
        sock = socket_module.create_connection((host, port), timeout=5.0)
        try:
            bad_requests = [
                {"op": "GET", "from_index": -7},
                {"op": "GET", "from_index": [1]},
                {"op": "GET", "from_index": 0, "max_count": -2},
                {"op": "GET", "from_index": 0, "max_count": "many"},
            ]
            for request in bad_requests:
                response = roundtrip(sock, request)
                assert response["ok"] is False
            assert roundtrip(sock, {"op": "STATS"})["ok"] is True
        finally:
            sock.close()
