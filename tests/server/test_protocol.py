"""Wire protocol unit tests: framing and GET response layout."""

import socket
import struct
import threading

import pytest

from repro.server.protocol import (
    count_get_response,
    decode_add_signature,
    decode_get_response,
    decode_request,
    encode_add_request,
    encode_get_response,
    encode_request,
    read_frame,
    write_frame,
)
from repro.util.errors import ProtocolError


def socket_pair():
    a, b = socket.socketpair()
    a.settimeout(2.0)
    b.settimeout(2.0)
    return a, b


class TestFraming:
    def test_round_trip(self):
        a, b = socket_pair()
        try:
            write_frame(a, b"hello world")
            assert read_frame(b) == b"hello world"
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_order(self):
        a, b = socket_pair()
        try:
            for payload in (b"one", b"two", b"three"):
                write_frame(a, payload)
            assert read_frame(b) == b"one"
            assert read_frame(b) == b"two"
            assert read_frame(b) == b"three"
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket_pair()
        a.close()
        try:
            assert read_frame(b) is None
        finally:
            b.close()

    def test_truncated_header_raises(self):
        a, b = socket_pair()
        try:
            a.sendall(b"\x00\x00")  # half a header
            a.close()
            with pytest.raises(ProtocolError):
                read_frame(b)
        finally:
            b.close()

    def test_truncated_body_raises(self):
        a, b = socket_pair()
        try:
            a.sendall(struct.pack(">I", 100) + b"short")
            a.close()
            with pytest.raises(ProtocolError):
                read_frame(b)
        finally:
            b.close()

    def test_oversized_declared_length_rejected(self):
        a, b = socket_pair()
        try:
            a.sendall(struct.pack(">I", 1 << 31))
            with pytest.raises(ProtocolError):
                read_frame(b)
        finally:
            a.close()
            b.close()

    def test_large_frame_round_trip(self):
        a, b = socket_pair()
        payload = bytes(range(256)) * 4096  # 1 MiB
        received = {}

        def reader():
            received["data"] = read_frame(b)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            write_frame(a, payload)
            thread.join(5.0)
            assert received["data"] == payload
        finally:
            a.close()
            b.close()


class TestRequests:
    def test_request_round_trip(self):
        payload = encode_request({"op": "GET", "from_index": 7})
        assert decode_request(payload) == {"op": "GET", "from_index": 7}

    def test_add_request_carries_blob(self):
        blob = b"\x00\x01binary"
        request = decode_request(encode_add_request(blob, "tok"))
        assert request["op"] == "ADD"
        assert request["token"] == "tok"
        assert decode_add_signature(request) == blob

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(b"{nope")

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(b'{"from_index": 0}')

    def test_bad_base64_rejected(self):
        with pytest.raises(ProtocolError):
            decode_add_signature({"op": "ADD", "signature": "!!!not-base64!!!"})


class TestGetResponse:
    def test_round_trip(self):
        blobs = [b"alpha", b"", b"gamma" * 100]
        payload = encode_get_response(42, blobs)
        next_index, decoded = decode_get_response(payload)
        assert next_index == 42
        assert decoded == blobs

    def test_count_without_materializing(self):
        payload = encode_get_response(7, [b"a", b"b"])
        assert count_get_response(payload) == (7, 2)

    def test_empty_response(self):
        payload = encode_get_response(0, [])
        assert decode_get_response(payload) == (0, [])

    @pytest.mark.parametrize(
        "mutation",
        ["magic", "truncate_length", "truncate_body", "trailing"],
    )
    def test_corruption_detected(self, mutation):
        payload = bytearray(encode_get_response(3, [b"abc", b"defg"]))
        if mutation == "magic":
            payload[0] ^= 0xFF
        elif mutation == "truncate_length":
            payload = payload[:14]
        elif mutation == "truncate_body":
            payload = payload[:-2]
        elif mutation == "trailing":
            payload += b"junk"
        with pytest.raises(ProtocolError):
            decode_get_response(bytes(payload))
