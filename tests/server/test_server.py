"""Server request-processing tests (ADD/GET + §III-C2 validation)."""

import random

import pytest

from repro.core.signature import DeadlockSignature
from repro.crypto.userid import UserIdAuthority
from repro.server.ratelimit import SECONDS_PER_DAY
from repro.server.server import CommunixServer, ServerConfig
from repro.util.clock import ManualClock


@pytest.fixture
def server(manual_clock):
    authority = UserIdAuthority(rng=random.Random(11))
    return CommunixServer(authority=authority, clock=manual_clock)


class TestAdd:
    def test_valid_add_accepted(self, server, shared_factory):
        token = server.issue_user_token()
        sig = shared_factory.make_valid()
        outcome = server.process_add(sig.to_bytes(), token)
        assert outcome.accepted
        assert outcome.index == 0
        assert len(server.database) == 1

    def test_bad_token_rejected(self, server, shared_factory):
        sig = shared_factory.make_valid()
        outcome = server.process_add(sig.to_bytes(), "ab" * 48)
        assert not outcome.accepted
        assert outcome.verdict == "bad_token"

    def test_malformed_blob_rejected(self, server):
        token = server.issue_user_token()
        outcome = server.process_add(b"garbage bytes", token)
        assert not outcome.accepted
        assert outcome.verdict == "malformed"

    def test_oversized_blob_rejected(self, server):
        token = server.issue_user_token()
        outcome = server.process_add(b"x" * (65 * 1024), token)
        assert outcome.verdict == "oversized"

    def test_quota_enforced(self, manual_clock, shared_factory):
        # Disable the adjacency check so only the quota binds: random
        # same-app signatures often share some top frames.
        server = CommunixServer(
            config=ServerConfig(adjacency_check=False),
            authority=UserIdAuthority(rng=random.Random(1)),
            clock=manual_clock,
        )
        token = server.issue_user_token()
        accepted = 0
        for _ in range(15):
            sig = shared_factory.make_valid()
            if server.process_add(sig.to_bytes(), token).accepted:
                accepted += 1
        assert accepted == 10  # the paper's 10-per-day cap

    def test_quota_resets_next_day(self, manual_clock, shared_factory):
        # Adjacency off: only the quota should decide outcomes here.
        server = CommunixServer(
            config=ServerConfig(adjacency_check=False),
            authority=UserIdAuthority(rng=random.Random(6)),
            clock=manual_clock,
        )
        token = server.issue_user_token()
        for _ in range(10):
            server.process_add(shared_factory.make_valid().to_bytes(), token)
        assert not server.process_add(
            shared_factory.make_valid().to_bytes(), token
        ).accepted
        manual_clock.advance(SECONDS_PER_DAY)
        assert server.process_add(
            shared_factory.make_valid().to_bytes(), token
        ).accepted

    def test_duplicate_signature_same_index(self, server, shared_factory):
        token_a = server.issue_user_token()
        token_b = server.issue_user_token()
        sig = shared_factory.make_valid()
        first = server.process_add(sig.to_bytes(), token_a)
        second = server.process_add(sig.to_bytes(), token_b)
        assert first.index == second.index
        assert len(server.database) == 1


class TestAdjacency:
    def test_same_user_adjacent_rejected(self, server, shared_factory):
        token = server.issue_user_token()
        a, b = shared_factory.make_adjacent_pair()
        assert server.process_add(a.to_bytes(), token).accepted
        outcome = server.process_add(b.to_bytes(), token)
        assert not outcome.accepted
        assert outcome.verdict == "adjacent"

    def test_other_user_provides_adjacent(self, server, shared_factory):
        """'The signatures wrongly rejected due to this restriction can be
        provided by other users.'"""
        a, b = shared_factory.make_adjacent_pair()
        assert server.process_add(a.to_bytes(), server.issue_user_token()).accepted
        assert server.process_add(b.to_bytes(), server.issue_user_token()).accepted

    def test_identical_top_sets_not_adjacent(self, server, shared_factory):
        token = server.issue_user_token()
        a, b = shared_factory.make_mergeable_pair()
        assert server.process_add(a.to_bytes(), token).accepted
        outcome = server.process_add(b.to_bytes(), token)
        assert outcome.accepted  # same bug, different manifestation: fine

    def test_adjacency_check_can_be_disabled(self, manual_clock, shared_factory):
        server = CommunixServer(
            config=ServerConfig(adjacency_check=False),
            authority=UserIdAuthority(rng=random.Random(5)),
            clock=manual_clock,
        )
        token = server.issue_user_token()
        a, b = shared_factory.make_adjacent_pair()
        assert server.process_add(a.to_bytes(), token).accepted
        assert server.process_add(b.to_bytes(), token).accepted


class TestGet:
    def test_get_incremental(self, server, shared_factory):
        # One user per signature: the same-user adjacency check must not
        # interfere with what GET serves.
        sigs = [shared_factory.make_valid() for _ in range(3)]
        for sig in sigs:
            token = server.issue_user_token()
            assert server.process_add(sig.to_bytes(), token).accepted
        next_index, blobs = server.process_get(0)
        assert next_index == 3
        assert [DeadlockSignature.from_bytes(b).sig_id for b in blobs] == [
            s.sig_id for s in sigs
        ]
        next_index, blobs = server.process_get(2)
        assert len(blobs) == 1

    def test_get_empty_database(self, server):
        next_index, blobs = server.process_get(0)
        assert next_index == 0
        assert blobs == []

    def test_stats_track_requests(self, server, shared_factory):
        token = server.issue_user_token()
        server.process_add(shared_factory.make_valid().to_bytes(), token)
        server.process_get(0)
        server.process_get(0)
        assert server.stats.adds_accepted == 1
        assert server.stats.gets_served == 2
        assert server.stats.signatures_served == 2


class TestTokenlessMode:
    def test_require_token_false_accepts_anything(self, manual_clock, shared_factory):
        server = CommunixServer(
            config=ServerConfig(require_token=False), clock=manual_clock
        )
        outcome = server.process_add(shared_factory.make_valid().to_bytes(), "")
        assert outcome.accepted
