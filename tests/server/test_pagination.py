"""Paginated GET: protocol layout, database paging, clamping, back-compat."""

import random
import socket as socket_module
import threading

import pytest

from repro.client.endpoints import TcpEndpoint
from repro.core.signature import DeadlockSignature
from repro.crypto.userid import UserIdAuthority
from repro.server.database import SignatureDatabase
from repro.server.protocol import (
    count_get_response,
    decode_get_page,
    decode_get_response,
    encode_get_page_response,
    encode_get_response,
    encode_get_response_chunks,
    pack_signature_record,
    read_frame,
    write_frame,
)
from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock
from repro.util.encoding import canonical_json
from repro.util.errors import ProtocolError


def fill(db, factory, n, uid_start=0):
    sigs = []
    for i in range(n):
        sig = factory.make_valid()
        db.append(sig, sig.to_bytes(), uid_start + i)
        sigs.append(sig)
    return sigs


class TestPageProtocol:
    def test_page_round_trip(self):
        blobs = [b"alpha", b"", b"gamma" * 100]
        chunks = [pack_signature_record(b) for b in blobs]
        payload = encode_get_page_response(42, len(blobs), chunks, more=True)
        next_index, decoded, more = decode_get_page(payload)
        assert (next_index, decoded, more) == (42, blobs, True)

    def test_page_no_more(self):
        payload = encode_get_page_response(7, 0, [], more=False)
        assert decode_get_page(payload) == (7, [], False)

    def test_decode_get_page_accepts_legacy_layout(self):
        payload = encode_get_response(9, [b"a", b"bb"])
        next_index, blobs, more = decode_get_page(payload)
        assert (next_index, blobs, more) == (9, [b"a", b"bb"], False)

    def test_count_works_on_both_layouts(self):
        legacy = encode_get_response(5, [b"x"])
        paged = encode_get_page_response(
            5, 1, [pack_signature_record(b"x")], more=True
        )
        assert count_get_response(legacy) == (5, 1)
        assert count_get_response(paged) == (5, 1)

    def test_chunked_legacy_encoding_matches_per_blob_encoding(self):
        blobs = [b"one", b"two" * 50, b""]
        chunks = [pack_signature_record(b) for b in blobs]
        assert encode_get_response_chunks(3, len(blobs), chunks) == (
            encode_get_response(3, blobs)
        )

    def test_truncated_page_detected(self):
        payload = encode_get_page_response(
            1, 1, [pack_signature_record(b"abcdef")], more=False
        )
        with pytest.raises(ProtocolError):
            decode_get_page(payload[:-2])


class TestDatabasePaging:
    def test_page_bounds_and_more_flag(self, shared_factory):
        db = SignatureDatabase(segment_size=4)
        fill(db, shared_factory, 10)
        next_index, blobs, more = db.blobs_page(0, 3)
        assert (next_index, len(blobs), more) == (3, 3, True)
        next_index, blobs, more = db.blobs_page(3, 100)
        assert (next_index, len(blobs), more) == (10, 7, False)

    def test_pages_cross_segment_boundaries(self, shared_factory):
        db = SignatureDatabase(segment_size=3)
        sigs = fill(db, shared_factory, 8)
        expected = [s.sig_id for s in sigs]
        got = []
        cursor, more = 0, True
        while more:
            cursor, blobs, more = db.blobs_page(cursor, 2)
            got.extend(
                DeadlockSignature.from_bytes(b).sig_id for b in blobs
            )
        assert got == expected

    def test_wire_chunks_reassemble_to_blobs(self, shared_factory):
        db = SignatureDatabase(segment_size=3)
        sigs = fill(db, shared_factory, 7)
        next_index, count, chunks, more = db.wire_from(2, 4)
        assert (next_index, count, more) == (6, 4, True)
        payload = encode_get_page_response(next_index, count, chunks, more)
        _, blobs, _ = decode_get_page(payload)
        assert [DeadlockSignature.from_bytes(b).sig_id for b in blobs] == [
            s.sig_id for s in sigs[2:6]
        ]

    def test_sealed_segment_wire_cache_is_reused(self, shared_factory):
        db = SignatureDatabase(segment_size=2)
        fill(db, shared_factory, 5)
        first = db.wire_from(0, None)[2]
        second = db.wire_from(0, None)[2]
        # Sealed segments hand back the identical cached bytes object.
        assert first[0] is second[0]
        assert first[1] is second[1]

    def test_append_invalidates_only_tail(self, shared_factory):
        db = SignatureDatabase(segment_size=2)
        fill(db, shared_factory, 5)
        sealed_before = db.wire_from(0, None)[2][0]
        fill(db, shared_factory, 1)
        chunks_after = db.wire_from(0, None)[2]
        assert chunks_after[0] is sealed_before

    def test_empty_page_past_end(self, shared_factory):
        db = SignatureDatabase(segment_size=4)
        fill(db, shared_factory, 2)
        next_index, count, chunks, more = db.wire_from(50, 10)
        assert (next_index, count, tuple(chunks), more) == (2, 0, (), False)


@pytest.fixture
def live_server():
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(21)),
        clock=ManualClock(start=1_000_000.0),
        config=ServerConfig(max_get_page=4),
    )
    transport = ServerTransport(server)
    host, port = transport.start()
    yield server, host, port
    transport.stop()


def upload(server, factory, n):
    sigs = []
    for _ in range(n):
        sig = factory.make_valid()
        assert server.process_add(
            sig.to_bytes(), server.issue_user_token()
        ).accepted
        sigs.append(sig)
    return sigs


class TestServerPaging:
    def test_oversized_max_count_clamped(self, live_server, shared_factory):
        server, _, _ = live_server
        upload(server, shared_factory, 10)
        next_index, blobs, more = server.process_get_page(0, 10_000_000)
        assert len(blobs) == 4  # ServerConfig.max_get_page
        assert (next_index, more) == (4, True)

    def test_negative_max_count_empty_page(self, live_server, shared_factory):
        server, _, _ = live_server
        upload(server, shared_factory, 2)
        next_index, blobs, more = server.process_get_page(0, -3)
        assert (next_index, blobs, more) == (0, [], True)

    def test_process_get_accepts_max_count(self, live_server, shared_factory):
        server, _, _ = live_server
        upload(server, shared_factory, 6)
        next_index, blobs = server.process_get(1, 2)
        assert (next_index, len(blobs)) == (3, 2)

    def test_tcp_pagination_loops_until_drained(self, live_server, shared_factory):
        server, host, port = live_server
        sigs = upload(server, shared_factory, 11)
        endpoint = TcpEndpoint(host, port)
        try:
            got, cursor, more, pages = [], 0, True, 0
            while more:
                cursor, blobs, more = endpoint.get_page(cursor, 1000)
                got.extend(blobs)
                pages += 1
            assert pages == 3  # 4 + 4 + 3 under the server's page cap
            assert [DeadlockSignature.from_bytes(b).sig_id for b in got] == [
                s.sig_id for s in sigs
            ]
        finally:
            endpoint.close()

    def test_unpaginated_get_still_serves_everything(self, live_server,
                                                     shared_factory):
        """Back-compat: an old client's GET (no max_count) is answered in
        the legacy layout with the full tail, ignoring the page cap."""
        server, host, port = live_server
        sigs = upload(server, shared_factory, 9)
        endpoint = TcpEndpoint(host, port)
        try:
            next_index, blobs = endpoint.get(0)
            assert next_index == 9
            assert len(blobs) == 9
        finally:
            endpoint.close()
        # And on the wire it really is the legacy SIGS layout.
        sock = socket_module.create_connection((host, port), timeout=5.0)
        try:
            write_frame(sock, canonical_json({"op": "GET", "from_index": 0}))
            payload = read_frame(sock)
            assert payload[:4] == b"SIGS"
            decode_get_response(payload)  # strict legacy decoder accepts it
        finally:
            sock.close()

    def test_paged_wire_layout_is_sig2(self, live_server, shared_factory):
        server, host, port = live_server
        upload(server, shared_factory, 6)
        sock = socket_module.create_connection((host, port), timeout=5.0)
        try:
            write_frame(
                sock,
                canonical_json({"op": "GET", "from_index": 0, "max_count": 2}),
            )
            payload = read_frame(sock)
            assert payload[:4] == b"SIG2"
            next_index, blobs, more = decode_get_page(payload)
            assert (next_index, len(blobs), more) == (2, 2, True)
        finally:
            sock.close()

    def test_bad_max_count_rejected(self, live_server):
        _, host, port = live_server
        sock = socket_module.create_connection((host, port), timeout=5.0)
        try:
            write_frame(
                sock,
                canonical_json(
                    {"op": "GET", "from_index": 0, "max_count": "lots"}
                ),
            )
            from repro.util.encoding import from_canonical_json

            response = from_canonical_json(read_frame(sock))
            assert response["ok"] is False
            assert "max_count" in response["error"]
        finally:
            sock.close()


class TestPagingUnderConcurrency:
    def test_adds_racing_paginated_get_no_gap_no_duplicate(
            self, live_server, shared_factory):
        """A reader paging through the database while writers append must
        see every index exactly once up to wherever it stops."""
        server, _, _ = live_server
        stop_adding = threading.Event()

        def writer():
            while not stop_adding.is_set():
                sig = shared_factory.make_valid()
                server.process_add(sig.to_bytes(), server.issue_user_token())

        writers = [threading.Thread(target=writer, daemon=True)
                   for _ in range(3)]
        for t in writers:
            t.start()
        try:
            seen_ids = []
            cursor = 0
            for _ in range(200):
                next_index, blobs, more = server.process_get_page(cursor, 3)
                assert next_index == cursor + len(blobs)
                seen_ids.extend(
                    DeadlockSignature.from_bytes(b).sig_id for b in blobs
                )
                cursor = next_index
                if not more and len(server.database) >= 30:
                    break
        finally:
            stop_adding.set()
            for t in writers:
                t.join(5.0)
        # Exactly-once in database order, no gaps, no duplicates.
        expected = [server.database.entry(i).sig_id for i in range(cursor)]
        assert seen_ids == expected
        assert len(set(seen_ids)) == len(seen_ids)
