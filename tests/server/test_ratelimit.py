"""Daily quota tests (§III-C1: at most 10 signatures per user per day)."""

from repro.server.ratelimit import SECONDS_PER_DAY, DailyQuota
from repro.util.clock import ManualClock


class TestQuota:
    def test_limit_enforced(self, manual_clock):
        quota = DailyQuota(manual_clock, limit_per_day=10)
        assert all(quota.try_consume(1) for _ in range(10))
        assert not quota.try_consume(1)
        assert quota.used_today(1) == 10

    def test_per_user_isolation(self, manual_clock):
        quota = DailyQuota(manual_clock, limit_per_day=2)
        assert quota.try_consume(1)
        assert quota.try_consume(1)
        assert not quota.try_consume(1)
        assert quota.try_consume(2)  # other users unaffected

    def test_resets_next_day(self, manual_clock):
        quota = DailyQuota(manual_clock, limit_per_day=3)
        for _ in range(3):
            quota.try_consume(7)
        assert not quota.try_consume(7)
        manual_clock.advance(SECONDS_PER_DAY)
        assert quota.try_consume(7)
        assert quota.used_today(7) == 1

    def test_partial_day_does_not_reset(self, manual_clock):
        quota = DailyQuota(manual_clock, limit_per_day=1)
        quota.try_consume(1)
        manual_clock.advance(SECONDS_PER_DAY / 2)
        # Still the same calendar day bucket unless the boundary is crossed.
        if int(manual_clock.now() // SECONDS_PER_DAY) == int(
            (manual_clock.now() - SECONDS_PER_DAY / 2) // SECONDS_PER_DAY
        ):
            assert not quota.try_consume(1)

    def test_custom_limit(self, manual_clock):
        quota = DailyQuota(manual_clock, limit_per_day=1)
        assert quota.limit == 1
        assert quota.try_consume(5)
        assert not quota.try_consume(5)

    def test_stale_days_dropped_in_day_buckets(self, manual_clock):
        """Counts are bucketed per day; rolling to a new day drops every
        stale bucket instead of rebuilding the whole table."""
        quota = DailyQuota(manual_clock, limit_per_day=10)
        for uid in range(500):
            quota.try_consume(uid)
        assert quota.tracked_days == 1
        manual_clock.advance(SECONDS_PER_DAY)
        quota.try_consume(1)  # first touch of the new day prunes yesterday
        assert quota.tracked_days == 1
        assert quota.used_today(1) == 1
        assert quota.used_today(499) == 0

    def test_refund_returns_a_slot(self, manual_clock):
        quota = DailyQuota(manual_clock, limit_per_day=2)
        assert quota.try_consume(1) and quota.try_consume(1)
        assert not quota.try_consume(1)
        quota.refund(1)
        assert quota.used_today(1) == 1
        assert quota.try_consume(1)  # the slot is usable again
        assert not quota.try_consume(1)

    def test_refund_without_consume_is_harmless(self, manual_clock):
        quota = DailyQuota(manual_clock, limit_per_day=2)
        quota.refund(42)  # nothing consumed today
        assert quota.used_today(42) == 0
        quota.try_consume(42)
        quota.refund(42)
        quota.refund(42)  # over-refund clamps at zero
        assert quota.used_today(42) == 0

    def test_refund_after_day_rollover_is_dropped(self, manual_clock):
        quota = DailyQuota(manual_clock, limit_per_day=2)
        quota.try_consume(1)
        manual_clock.advance(SECONDS_PER_DAY)
        quota.refund(1)  # yesterday's slot: nothing to give back today
        assert quota.used_today(1) == 0
        assert quota.try_consume(1) and quota.try_consume(1)
        assert not quota.try_consume(1)

    def test_used_today_before_any_consume(self, manual_clock):
        quota = DailyQuota(manual_clock, limit_per_day=10)
        assert quota.used_today(42) == 0

    def test_attack_model_bound(self, manual_clock):
        """§IV-B: 100 attackers x 5 ids x 10/day => at most 5,000 accepted."""
        quota = DailyQuota(manual_clock, limit_per_day=10)
        accepted = 0
        for attacker in range(100):
            for id_index in range(5):
                uid = attacker * 10 + id_index
                for _ in range(50):  # each tries to spam far beyond quota
                    if quota.try_consume(uid):
                        accepted += 1
        assert accepted == 5_000
