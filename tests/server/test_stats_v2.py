"""STATS versioning: the v1 wire shape is frozen, v2 is a superset."""

import random

import pytest

from repro.client.endpoints import SocketEndpoint
from repro.crypto.userid import UserIdAuthority
from repro.loadgen.metrics import LatencyHistogram
from repro.server.protocol import (
    decode_stats_version,
    encode_request,
    encode_stats_request,
)
from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock
from repro.util.errors import ProtocolError

V1_KEYS = {
    "ok", "database_size", "adds_accepted", "gets_served",
    "token_cache_hits", "token_cache_misses",
}


@pytest.fixture
def server(shared_factory):
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(5)),
        clock=ManualClock(start=1_000_000.0),
    )
    token = server.issue_user_token()
    for _ in range(3):
        server.process_add(shared_factory.make_valid().to_bytes(),
                           server.issue_user_token())
    server.process_add(b"garbage", token)  # one malformed rejection
    server.process_get_wire(0)  # the transport's GET path (timed)
    return server


class TestStatsPayload:
    def test_v1_shape_is_frozen(self, server):
        payload = server.stats_payload(version=1)
        assert set(payload) == V1_KEYS
        assert payload["ok"] is True
        assert payload["adds_accepted"] == 3
        assert payload["gets_served"] == 1

    def test_v2_is_a_superset_of_v1(self, server):
        v1 = server.stats_payload(version=1)
        v2 = server.stats_payload(version=2)
        for key, value in v1.items():
            assert v2[key] == value
        assert v2["version"] == 2
        assert v2["signatures_served"] == 3
        assert v2["adds_rejected"].get("malformed") == 1
        assert v2["database_segments"] >= 1
        assert "metrics" in v2

    def test_v2_stage_histograms_decode_with_loadgen(self, server):
        histograms = server.stats_payload(version=2)["metrics"]["histograms"]
        validate = histograms["stage.validate"]
        # 3 accepted ADDs went through validation; the malformed one was
        # rejected at parse, before the validator ran.
        assert validate["count"] == 3
        decoded = LatencyHistogram.from_wire(validate)
        assert decoded.count == 3
        assert decoded.percentile(99) > 0.0
        assert histograms["stage.db_append"]["count"] == 3
        assert histograms["stage.db_read"]["count"] == 1

    def test_future_version_clamps_to_newest(self, server):
        payload = server.stats_payload(version=99)
        assert payload["version"] == 2

    def test_rejection_snapshot_counts_exactly(self, server):
        # Regression: snapshot() used to read each rejection counter
        # twice (once for the emptiness test, once for the value), so a
        # concurrent increment between the reads could be dropped or
        # double-reported.  One read, used for both, counts exactly.
        for _ in range(4):
            server.process_add(b"garbage", server.issue_user_token())
        assert server.stats.adds_rejected["malformed"] == 5

    def test_metrics_disabled_payload_is_empty_but_versioned(self):
        server = CommunixServer(
            config=ServerConfig(metrics_enabled=False),
            authority=UserIdAuthority(rng=random.Random(5)),
        )
        assert server.metrics.enabled is False
        payload = server.stats_payload(version=2)
        assert payload["version"] == 2
        assert payload["metrics"] == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestStatsRequestCoding:
    def test_v1_request_is_byte_identical_to_legacy(self):
        assert encode_stats_request(1) == encode_request({"op": "STATS"})

    def test_v2_request_carries_version(self):
        assert b'"version"' in encode_stats_request(2)

    def test_decode_defaults_to_v1(self):
        assert decode_stats_version({"op": "STATS"}) == 1
        assert decode_stats_version({"op": "STATS", "version": 2}) == 2

    @pytest.mark.parametrize("bad", [True, False, "2", 2.0, 0, -1, None])
    def test_decode_rejects_malformed_versions(self, bad):
        with pytest.raises(ProtocolError):
            decode_stats_version({"op": "STATS", "version": bad})


class TestStatsOverTheWire:
    @pytest.fixture
    def live(self):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(7)),
            clock=ManualClock(start=1_000_000.0),
        )
        transport = ServerTransport(server)
        host, port = transport.start()
        endpoint = SocketEndpoint((host, port))
        yield server, endpoint
        endpoint.close()
        transport.stop()

    def test_v1_and_v2_round_trip(self, live, shared_factory):
        server, endpoint = live
        token = endpoint.issue_token()
        assert endpoint.add(shared_factory.make_valid().to_bytes(), token)
        v1 = endpoint.stats(version=1)
        assert set(v1) == V1_KEYS  # a v1 client sees exactly the old shape
        v2 = endpoint.stats()
        assert v2.get("version", 1) == 2
        assert v2["adds_accepted"] == v1["adds_accepted"] == 1
        stages = v2["metrics"]["histograms"]
        assert stages["stage.validate"]["count"] >= 1
        # Transport-level stages are live over a real socket.
        assert stages["stage.handler"]["count"] >= 1
        assert stages["stage.queue_wait"]["count"] >= 1
