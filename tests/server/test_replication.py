"""In-process tests for the federated tier's single-writer log protocol.

One owner :class:`CommunixServer` (plus its :class:`ReplicationHub`) and
one or two :class:`FederatedWorkerServer` replicas talk over a real
abstract unix socket — the same wire the multi-process federation uses,
minus the process boundary, so every assertion can look straight into
both sides' state.
"""

import time
import uuid

import pytest

from repro.loadgen.signatures import adjacent_spam_blobs, random_signature_blobs
from repro.obs import (
    RequestTrace,
    STAGE_DB_APPEND,
    STAGE_OWNER_QUEUE,
    STAGE_REPL_FORWARD,
    STAGE_VALIDATE,
    STAGE_WAL_FSYNC,
)
from repro.server.replication import (
    FederatedWorkerServer,
    ForwardError,
    LogForwardClient,
    ReplicationHub,
)
from repro.server.server import CommunixServer, ServerConfig
from repro.util.errors import ProtocolError


def _internal_addr() -> str:
    return f"unix://@cx-test-{uuid.uuid4().hex[:12]}"


def _wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class _Federation:
    """Owner + hub + N replicas on one internal endpoint."""

    def __init__(self, tmp_path=None, replicas: int = 1, **config_kwargs):
        config_kwargs.setdefault("max_signatures_per_user_per_day", 100_000)
        if tmp_path is not None:
            config_kwargs.setdefault("data_dir", str(tmp_path))
            config_kwargs.setdefault("fsync_policy", "always")
        self.config = ServerConfig(**config_kwargs)
        self.owner = CommunixServer(config=self.config)
        self.addr = _internal_addr()
        self.hub = ReplicationHub(self.owner, self.addr)
        self.hub.start()
        self.replicas = []
        for _ in range(replicas):
            replica = FederatedWorkerServer(self.config, self.addr)
            replica.start_replication()
            self.replicas.append(replica)

    @property
    def replica(self) -> FederatedWorkerServer:
        return self.replicas[0]

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()
        self.hub.stop()
        self.owner.close()


@pytest.fixture
def federation(tmp_path):
    fed = _Federation(tmp_path)
    yield fed
    fed.close()


class TestForwardedAdds:
    def test_replica_ack_means_owner_durability(self, federation):
        token = federation.replica.issue_user_token()
        blobs = random_signature_blobs(8, seed=11)
        for i, blob in enumerate(blobs):
            outcome = federation.replica.process_add(blob, token)
            assert outcome.accepted, outcome.verdict
            assert outcome.index == i
            # fsync=always: by the time the replica acks, the owner's
            # store has logged the record (append returns post-fsync).
            assert federation.owner.store.record_count == i + 1
        assert len(federation.owner.database) == len(blobs)

    def test_replica_has_no_store(self, federation):
        # data_dir is in the shared config, but only the owner opens it.
        assert federation.config.data_dir is not None
        assert federation.replica.store is None
        assert federation.owner.store is not None

    def test_owner_rejections_propagate(self, federation):
        # Two mutually-adjacent forged signatures from one user: the
        # owner's *global* adjacency check rejects the second, and the
        # verdict crosses the wire back into the replica's stats.
        token = federation.replica.issue_user_token()
        first, second = adjacent_spam_blobs(2, seed=3)
        assert federation.replica.process_add(first, token).accepted
        again = federation.replica.process_add(second, token)
        assert not again.accepted
        assert again.verdict == "adjacent"
        rejected = federation.replica.stats.adds_rejected
        assert rejected.get("adjacent") == 1

    def test_bad_token_rejected_locally(self, federation):
        blob = random_signature_blobs(1, seed=4)[0]
        outcome = federation.replica.process_add(blob, "not-a-token")
        assert not outcome.accepted
        assert outcome.verdict == "bad_token"
        # Never reached the owner: local validation is the cheap half.
        assert federation.hub.forwarded_adds == 0

    def test_quota_is_global_across_workers(self, tmp_path):
        fed = _Federation(tmp_path, replicas=2,
                          max_signatures_per_user_per_day=3)
        try:
            token = fed.replicas[0].issue_user_token()
            blobs = random_signature_blobs(5, seed=5)
            verdicts = []
            for i, blob in enumerate(blobs):
                # Alternate workers: a per-process quota would admit all 5.
                replica = fed.replicas[i % 2]
                verdicts.append(replica.process_add(blob, token))
            accepted = [v for v in verdicts if v.accepted]
            assert len(accepted) == 3
            assert all(v.verdict == "quota_exceeded"
                       for v in verdicts if not v.accepted)
        finally:
            fed.close()


class TestApplyStream:
    def test_replica_converges_on_owner_history(self, federation):
        token = federation.replica.issue_user_token()
        blobs = random_signature_blobs(10, seed=21)
        for blob in blobs:
            assert federation.replica.process_add(blob, token).accepted
        replica_db = federation.replica.database
        assert _wait_until(lambda: len(replica_db) == len(blobs))
        for i, blob in enumerate(blobs):
            assert replica_db.entry(i).blob == blob
        # GETs on the replica serve the replicated copy.
        next_index, page, more = federation.replica.process_get_page(0, 100)
        assert len(page) == len(blobs)
        assert next_index == len(blobs)
        assert not more

    def test_late_replica_backfills(self, federation):
        token = federation.replica.issue_user_token()
        blobs = random_signature_blobs(6, seed=22)
        for blob in blobs:
            assert federation.replica.process_add(blob, token).accepted
        late = FederatedWorkerServer(federation.config, federation.addr)
        late.start_replication()
        try:
            assert _wait_until(lambda: len(late.database) == len(blobs))
            assert late.replica_feed.applied == len(blobs)
        finally:
            late.close()


class TestPushWakeup:
    """The owner pushes publish wakeups; the fallback wait is only a
    safety net.  Both tests cripple the fallback to prove the push."""

    def _build(self, tmp_path, fallback_wait: float):
        config = ServerConfig(data_dir=str(tmp_path), fsync_policy="always",
                              max_signatures_per_user_per_day=100_000)
        owner = CommunixServer(config=config)
        addr = _internal_addr()
        hub = ReplicationHub(owner, addr, fallback_wait=fallback_wait)
        hub.start()
        replica = FederatedWorkerServer(config, addr)
        replica.start_replication()
        return owner, hub, replica

    def test_publish_wakes_stream_before_fallback(self, tmp_path):
        # With a 30 s fallback, a poll-walk stream would not deliver
        # inside the 5 s wait below; only the push can.
        owner, hub, replica = self._build(tmp_path, fallback_wait=30.0)
        try:
            token = replica.issue_user_token()
            blob = random_signature_blobs(1, seed=31)[0]
            assert replica.process_add(blob, token).accepted
            assert _wait_until(lambda: len(replica.database) == 1,
                               timeout=5.0)
        finally:
            replica.close()
            hub.stop()
            owner.close()

    def test_stop_wakes_sleeping_streams(self, tmp_path):
        owner, hub, replica = self._build(tmp_path, fallback_wait=30.0)
        try:
            token = replica.issue_user_token()
            blob = random_signature_blobs(1, seed=32)[0]
            assert replica.process_add(blob, token).accepted
            assert _wait_until(lambda: len(replica.database) == 1,
                               timeout=5.0)
        finally:
            replica.close()
            hub.stop()
            owner.close()
        # stop() set the stream's wakeup: the thread exited instead of
        # sleeping out the 30 s fallback (join would have timed out).
        assert all(not t.is_alive() for t in hub._threads)

    def test_stream_wakeups_deregister_on_disconnect(self, tmp_path):
        owner, hub, replica = self._build(tmp_path, fallback_wait=0.05)
        try:
            assert _wait_until(lambda: len(hub._wakeups) == 1)
            replica.close()
            assert _wait_until(lambda: len(hub._wakeups) == 0)
        finally:
            replica.close()
            hub.stop()
            owner.close()


class TestReplicaGuard:
    def test_flooding_uid_shed_before_forward(self, tmp_path):
        fed = _Federation(tmp_path, guard_enabled=True, guard_budget=16,
                          guard_window_s=0.2)
        try:
            token = fed.replica.issue_user_token()
            guard = fed.replica.guard
            assert guard is not None
            # Pin the classification instead of racing real windows:
            # the wiring under test is process_add -> admit_uid -> shed
            # without a forward round-trip.
            uid = fed.replica.validator.resolve_uid(token)
            guard.force_score()
            from repro.guard.detector import FlowClass
            guard.uid_dim.classes = {uid: FlowClass.FLOODING}
            forwarded_before = fed.hub.forwarded_adds
            blob = random_signature_blobs(1, seed=33)[0]
            outcome = fed.replica.process_add(blob, token)
            assert not outcome.accepted
            assert outcome.verdict == "shed"
            assert fed.hub.forwarded_adds == forwarded_before
        finally:
            fed.close()


class TestStatsAccounting:
    def test_no_double_booking(self, federation):
        token = federation.replica.issue_user_token()
        blobs = random_signature_blobs(7, seed=31)
        for blob in blobs:
            assert federation.replica.process_add(blob, token).accepted
        # The replica owns the client-facing count; the owner saw only
        # internal forwards, which it tracks separately.  Summing worker
        # stats therefore equals what clients experienced.
        assert federation.replica.stats.adds_accepted == len(blobs)
        assert federation.owner.stats.adds_accepted == 0
        assert federation.hub.forwarded_adds == len(blobs)

    def test_forwarded_issue_counted_once(self, federation):
        token = federation.replica.issue_user_token()
        assert token
        assert federation.hub.forwarded_issues == 1


class TestOwnerLoss:
    def test_add_fails_closed_when_owner_unreachable(self, federation):
        token = federation.replica.issue_user_token()
        federation.hub.stop()
        blob = random_signature_blobs(1, seed=41)[0]
        outcome = federation.replica.process_add(blob, token)
        assert not outcome.accepted
        assert outcome.verdict == "store_error"
        assert federation.replica.stats.adds_accepted == 0
        with pytest.raises(ProtocolError):
            federation.replica.issue_user_token()

    def test_forward_client_redials_after_error(self, tmp_path):
        fed = _Federation(tmp_path)
        try:
            client = LogForwardClient(fed.addr)
            assert client.forward_issue()
            fed.hub.stop()
            with pytest.raises(ForwardError):
                client.forward_issue()
            # A fresh hub on the same endpoint: the next call redials.
            fed.hub = ReplicationHub(fed.owner, fed.addr)
            fed.hub.start()
            assert client.forward_issue()
            client.close()
            with pytest.raises(ForwardError):
                client.forward_issue()
        finally:
            fed.close()


class TestCrossTierTracing:
    """A forwarded ADD is one logical request across two servers; its
    trace must show both sides' stages stamped on one trace id."""

    def test_forwarded_add_folds_owner_stages_into_one_trace(
            self, federation):
        token = federation.replica.issue_user_token()
        blob = random_signature_blobs(1, seed=51)[0]
        trace = RequestTrace(op="ADD")
        outcome = federation.replica.process_add(blob, token, trace=trace)
        assert outcome.accepted
        # Replica-side stages: the forward hop and the derived
        # owner-queue share of it.
        assert trace.stages[STAGE_REPL_FORWARD] > 0.0
        assert STAGE_OWNER_QUEUE in trace.stages
        assert (trace.stages[STAGE_OWNER_QUEUE]
                <= trace.stages[STAGE_REPL_FORWARD])
        # Owner-side stages crossed the wire back and were folded in —
        # fsync=always, so the WAL stamps rode along too.
        assert trace.stages[STAGE_VALIDATE] > 0.0
        assert trace.stages[STAGE_DB_APPEND] > 0.0
        assert STAGE_WAL_FSYNC in trace.stages
        # The owner noted its half under the *same* id the replica
        # minted: one trace id, visible from both tiers' /traces.
        owner_entry = federation.owner.traces.find(trace.hex_id())
        assert owner_entry is not None
        assert owner_entry["trace_id"] == trace.hex_id()
        assert "validate" in owner_entry["stages_ms"]
        assert "db_append" in owner_entry["stages_ms"]

    def test_forward_without_trace_sends_zero_id(self, federation):
        token = federation.replica.issue_user_token()
        blob = random_signature_blobs(1, seed=52)[0]
        before = len(federation.owner.traces)
        assert federation.replica.process_add(blob, token).accepted
        # No trace handed in -> trace id 0 on the wire -> the owner
        # stamps nothing and notes nothing.
        assert len(federation.owner.traces) == before

    def test_forward_client_returns_owner_stage_dict(self, federation):
        client = LogForwardClient(federation.addr)
        try:
            token = client.forward_issue()
            uid = federation.owner.validator.resolve_uid(token)
            blob = random_signature_blobs(1, seed=53)[0]
            outcome, stages = client.forward_add(uid, blob, trace_id=0x42)
            assert outcome.accepted
            assert stages[STAGE_VALIDATE] > 0.0
            assert stages[STAGE_DB_APPEND] > 0.0
        finally:
            client.close()

    def test_replication_lag_gauge_and_apply_lag_exported(self, federation):
        token = federation.replica.issue_user_token()
        blobs = random_signature_blobs(4, seed=54)
        for blob in blobs:
            assert federation.replica.process_add(blob, token).accepted
        replica_db = federation.replica.database
        assert _wait_until(lambda: len(replica_db) == len(blobs))
        snap = federation.replica.metrics.snapshot()
        # Caught up: published minus applied is zero.
        assert snap["gauges"].get("replication.lag") == 0
        assert snap["histograms"]["stage.apply_lag"]["count"] >= len(blobs)
        # Owner-side hub instruments.
        owner_snap = federation.owner.metrics.snapshot()
        assert owner_snap["counters"]["replication.forwarded_adds"] == 4
        assert owner_snap["gauges"]["replication.subscribers"] == 1


class TestUidAllocation:
    def test_uids_are_globally_unique(self, federation):
        # Tokens issued via the replica and via the owner draw from the
        # owner's single allocator.
        tokens = [federation.replica.issue_user_token(),
                  federation.owner.issue_user_token(),
                  federation.replica.issue_user_token()]
        uids = {federation.replica.validator.resolve_uid(t) for t in tokens}
        assert len(uids) == 3
        assert None not in uids
