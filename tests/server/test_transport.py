"""Transport integration tests (server + SocketEndpoint, TCP and UNIX)."""

import os
import random
import socket
import threading
import time

import pytest

from repro.client.endpoints import SocketEndpoint, TcpEndpoint
from repro.core.signature import DeadlockSignature
from repro.crypto.userid import UserIdAuthority
from repro.net import unix_endpoint
from repro.server.server import CommunixServer
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock
from repro.util.errors import ProtocolError


@pytest.fixture
def live_server():
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(2)),
        clock=ManualClock(start=1_000_000.0),
    )
    transport = ServerTransport(server)
    host, port = transport.start()
    yield server, host, port
    transport.stop()


class TestEndToEnd:
    def test_issue_add_get_cycle(self, live_server, shared_factory):
        server, host, port = live_server
        endpoint = TcpEndpoint(host, port)
        try:
            token = endpoint.issue_token()
            sig = shared_factory.make_valid()
            assert endpoint.add(sig.to_bytes(), token)
            next_index, blobs = endpoint.get(0)
            assert next_index == 1
            assert DeadlockSignature.from_bytes(blobs[0]).sig_id == sig.sig_id
        finally:
            endpoint.close()

    def test_rejection_propagates(self, live_server, shared_factory):
        server, host, port = live_server
        endpoint = TcpEndpoint(host, port)
        try:
            sig = shared_factory.make_valid()
            assert endpoint.add(sig.to_bytes(), "bogus-token") is False
        finally:
            endpoint.close()

    def test_persistent_connection_many_requests(self, live_server, shared_factory):
        server, host, port = live_server
        endpoint = TcpEndpoint(host, port)
        try:
            # Fresh token per add: adjacency is per-user and must not bite.
            for _ in range(5):
                token = endpoint.issue_token()
                assert endpoint.add(shared_factory.make_valid().to_bytes(), token)
            next_index, blobs = endpoint.get(0)
            assert next_index == 5
            assert len(blobs) == 5
        finally:
            endpoint.close()

    def test_concurrent_clients(self, live_server, shared_factory):
        server, host, port = live_server
        sigs = [shared_factory.make_valid() for _ in range(12)]
        failures = []

        def client(batch):
            endpoint = TcpEndpoint(host, port)
            try:
                for sig in batch:
                    token = endpoint.issue_token()
                    if not endpoint.add(sig.to_bytes(), token):
                        failures.append(sig.sig_id)
                endpoint.get(0)
            except Exception as exc:  # pragma: no cover
                failures.append(exc)
            finally:
                endpoint.close()

        threads = [
            threading.Thread(target=client, args=(sigs[i::3],)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert not failures
        unique = len({s.sig_id for s in sigs})
        assert len(server.database) == unique

    def test_unknown_op_returns_error(self, live_server):
        import socket as socket_module

        from repro.server.protocol import read_frame, write_frame
        from repro.util.encoding import canonical_json, from_canonical_json

        _, host, port = live_server
        sock = socket_module.create_connection((host, port), timeout=2.0)
        try:
            write_frame(sock, canonical_json({"op": "EXPLODE"}))
            response = from_canonical_json(read_frame(sock))
            assert response["ok"] is False
            assert "EXPLODE" in response["error"]
        finally:
            sock.close()

    def test_malformed_frame_closes_cleanly(self, live_server):
        import socket as socket_module

        _, host, port = live_server
        sock = socket_module.create_connection((host, port), timeout=2.0)
        try:
            sock.sendall(b"\xff\xff\xff\xff")  # absurd length header
            sock.settimeout(2.0)
            # Server drops the connection; recv returns EOF eventually.
            assert sock.recv(4096) == b""
        finally:
            sock.close()

    def test_stats_op(self, live_server, shared_factory):
        server, host, port = live_server
        endpoint = TcpEndpoint(host, port)
        try:
            token = endpoint.issue_token()
            endpoint.add(shared_factory.make_valid().to_bytes(), token)
            import socket as socket_module

            from repro.server.protocol import read_frame, write_frame
            from repro.util.encoding import canonical_json, from_canonical_json

            sock = socket_module.create_connection((host, port), timeout=2.0)
            try:
                write_frame(sock, canonical_json({"op": "STATS"}))
                stats = from_canonical_json(read_frame(sock))
                assert stats["ok"] and stats["database_size"] == 1
            finally:
                sock.close()
        finally:
            endpoint.close()


def _make_server(seed: int) -> CommunixServer:
    return CommunixServer(
        authority=UserIdAuthority(rng=random.Random(seed)),
        clock=ManualClock(start=1_000_000.0),
    )


class TestMultiEndpoint:
    def test_unix_endpoint_serves_requests(self, tmp_path, shared_factory):
        path = str(tmp_path / "server.sock")
        transport = ServerTransport(
            _make_server(21), endpoints=[f"unix://{path}"]
        )
        transport.start()
        endpoint = SocketEndpoint(f"unix://{path}")
        try:
            token = endpoint.issue_token()
            sig = shared_factory.make_valid()
            assert endpoint.add(sig.to_bytes(), token)
            next_index, blobs, more = endpoint.get_page(0, 10)
            assert next_index == 1 and len(blobs) == 1 and not more
        finally:
            endpoint.close()
            transport.stop()
        # Clean shutdown removes the socket file.
        assert not os.path.exists(path)

    def test_tcp_and_unix_served_simultaneously(self, tmp_path,
                                                shared_factory):
        """One server, one database, two transports: an ADD over TCP is
        visible to a GET over the UNIX socket."""
        path = str(tmp_path / "both.sock")
        server = _make_server(22)
        transport = ServerTransport(
            server, endpoints=["tcp://127.0.0.1:0", f"unix://{path}"]
        )
        host, port = transport.start()
        assert len(transport.bound_endpoints) == 2
        tcp = SocketEndpoint(f"tcp://{host}:{port}")
        unix = SocketEndpoint(f"unix://{path}")
        try:
            sig = shared_factory.make_valid()
            assert tcp.add(sig.to_bytes(), tcp.issue_token())
            next_index, blobs = unix.get(0)
            assert next_index == 1
            assert DeadlockSignature.from_bytes(blobs[0]).sig_id == sig.sig_id
        finally:
            tcp.close()
            unix.close()
            transport.stop()
        assert transport.open_fds() == []
        assert not os.path.exists(path)

    def test_stale_socket_file_does_not_block_restart(self, tmp_path):
        """A server that died uncleanly leaves its socket file; the next
        start must reclaim the address."""
        path = str(tmp_path / "stale.sock")
        import socket as socket_module
        leftover = socket_module.socket(socket_module.AF_UNIX,
                                        socket_module.SOCK_STREAM)
        leftover.bind(path)
        leftover.listen(1)
        leftover.close()  # crash without unlink: file remains
        assert os.path.exists(path)
        transport = ServerTransport(_make_server(23),
                                    endpoints=[unix_endpoint(path)])
        transport.start()
        endpoint = SocketEndpoint(f"unix://{path}")
        try:
            assert endpoint.issue_token()
        finally:
            endpoint.close()
            transport.stop()
        assert not os.path.exists(path)


class TestEndpointRobustness:
    def test_endpoint_raises_when_server_gone(self, shared_factory):
        endpoint = TcpEndpoint("127.0.0.1", 1)  # nothing listens there
        with pytest.raises(ProtocolError):
            endpoint.get(0)


def _open_fd_count() -> int | None:
    import os

    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # non-Linux fallback: rely on transport.open_fds()
        return None


class TestShutdown:
    def test_stop_closes_open_connections_no_fd_leak(self, shared_factory):
        """Regression for the thread-per-connection stop() leak: every
        registered connection and internal FD must be closed on stop()."""
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(4)),
            clock=ManualClock(start=1_000_000.0),
        )
        before = _open_fd_count()
        transport = ServerTransport(server)
        host, port = transport.start()
        endpoints = [TcpEndpoint(host, port) for _ in range(20)]
        try:
            for endpoint in endpoints:
                endpoint.issue_token()  # forces the connection open
            deadline = time.monotonic() + 5.0
            while (transport.connection_count < 20
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert transport.connection_count == 20
            transport.stop()
            assert transport.connection_count == 0
            assert transport.open_fds() == []
            # Server side hung up: clients observe EOF, not a hang.
            with pytest.raises(ProtocolError):
                endpoints[0].get(0)
        finally:
            for endpoint in endpoints:
                endpoint.close()
        after = _open_fd_count()
        if before is not None and after is not None:
            assert after <= before

    def test_stop_drains_in_flight_response(self, live_server, shared_factory):
        server, host, port = live_server
        endpoint = TcpEndpoint(host, port)
        try:
            token = endpoint.issue_token()
            assert endpoint.add(shared_factory.make_valid().to_bytes(), token)
        finally:
            endpoint.close()

    def test_stop_idempotent(self):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(5)),
            clock=ManualClock(start=1_000_000.0),
        )
        transport = ServerTransport(server)
        transport.stop()  # never started: no-op
        transport.start()
        transport.stop()
        transport.stop()
        assert transport.open_fds() == []

    def test_restart_after_stop(self, shared_factory):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(6)),
            clock=ManualClock(start=1_000_000.0),
        )
        transport = ServerTransport(server)
        transport.start()
        transport.stop()
        host, port = transport.start()
        endpoint = TcpEndpoint(host, port)
        try:
            token = endpoint.issue_token()
            assert endpoint.add(shared_factory.make_valid().to_bytes(), token)
        finally:
            endpoint.close()
            transport.stop()


class TestEventLoopConcurrency:
    def test_many_persistent_connections_without_thread_per_conn(
            self, shared_factory):
        """128 simultaneous persistent connections must not cost 128 server
        threads — the event loop plus a bounded worker pool serves them."""
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(7)),
            clock=ManualClock(start=1_000_000.0),
        )
        transport = ServerTransport(server, workers=4)
        host, port = transport.start()
        threads_before = threading.active_count()
        endpoints = [TcpEndpoint(host, port) for _ in range(128)]
        try:
            for endpoint in endpoints:
                endpoint.issue_token()
            assert transport.connection_count == 128
            # Every connection stays open; requests still get answered.
            for endpoint in endpoints[::8]:
                next_index, blobs = endpoint.get(0)
                assert next_index == len(server.database)
            # Thread growth is the worker pool (<=4), not one per conn.
            assert threading.active_count() - threads_before <= 8
        finally:
            for endpoint in endpoints:
                endpoint.close()
            transport.stop()

    def test_idle_connections_reaped(self):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(8)),
            clock=ManualClock(start=1_000_000.0),
        )
        transport = ServerTransport(server, idle_timeout=0.3)
        host, port = transport.start()
        try:
            sock = socket.create_connection((host, port), timeout=2.0)
            try:
                deadline = time.monotonic() + 1.0
                while (transport.connection_count == 0
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
                assert transport.connection_count == 1
                sock.settimeout(5.0)
                assert sock.recv(1) == b""  # server closed the idle conn
                assert transport.connection_count == 0
            finally:
                sock.close()
        finally:
            transport.stop()

    def test_stalled_reader_is_reaped(self, shared_factory):
        """A peer that requests a response and then never reads it must
        not hold its connection (and buffered bytes) forever — write
        stalls count as idleness."""
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(9)),
            clock=ManualClock(start=1_000_000.0),
        )
        for _ in range(200):
            sig = shared_factory.make_valid()
            server.process_add(sig.to_bytes(), server.issue_user_token())
        transport = ServerTransport(server, idle_timeout=0.5)
        host, port = transport.start()
        try:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            # Tiny receive buffer: the response cannot fit in kernel
            # buffers, so the server's send stalls while we don't read.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            sock.connect((host, port))
            from repro.server.protocol import write_frame
            from repro.util.encoding import canonical_json

            write_frame(sock, canonical_json({"op": "GET", "from_index": 0}))
            deadline = time.monotonic() + 10.0
            while (transport.connection_count > 0
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert transport.connection_count == 0
            sock.close()
        finally:
            transport.stop()

    def test_pipelined_requests_answered_in_order(self, live_server):
        """Multiple frames sent before reading any response come back in
        request order (per-connection serialization)."""
        from repro.server.protocol import read_frame, write_frame
        from repro.util.encoding import canonical_json, from_canonical_json

        _, host, port = live_server
        sock = socket.create_connection((host, port), timeout=5.0)
        try:
            for _ in range(5):
                write_frame(sock, canonical_json({"op": "ISSUE_ID"}))
            write_frame(sock, canonical_json({"op": "STATS"}))
            for _ in range(5):
                response = from_canonical_json(read_frame(sock))
                assert response["ok"] and "token" in response
            stats = from_canonical_json(read_frame(sock))
            assert stats["ok"] and "database_size" in stats
        finally:
            sock.close()


class TestPooledReceive:
    """Regression for the batched-syscall read path: the loop thread
    borrows one pooled buffer per read event instead of allocating a
    fresh 256 KB ``bytes`` per ``recv`` (PR 6)."""

    def test_many_requests_reuse_one_buffer(self, shared_factory):
        server = _make_server(31)
        transport = ServerTransport(server)
        host, port = transport.start()
        endpoint = TcpEndpoint(host, port)
        try:
            for _ in range(40):
                token = endpoint.issue_token()
                assert endpoint.add(
                    shared_factory.make_valid().to_bytes(), token
                )
            # Reads happen one at a time on the single loop thread, so
            # steady state is exactly one pool allocation (a transient
            # second borrow is tolerated, unbounded growth is the bug).
            assert transport._recv_pool.allocated <= 2
            assert transport._recv_pool.free_count >= 1
        finally:
            endpoint.close()
            transport.stop()
