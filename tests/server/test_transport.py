"""TCP transport integration tests (server + TcpEndpoint)."""

import random
import threading

import pytest

from repro.client.endpoints import TcpEndpoint
from repro.core.signature import DeadlockSignature
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock
from repro.util.errors import ProtocolError


@pytest.fixture
def live_server():
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(2)),
        clock=ManualClock(start=1_000_000.0),
    )
    transport = ServerTransport(server)
    host, port = transport.start()
    yield server, host, port
    transport.stop()


class TestEndToEnd:
    def test_issue_add_get_cycle(self, live_server, shared_factory):
        server, host, port = live_server
        endpoint = TcpEndpoint(host, port)
        try:
            token = endpoint.issue_token()
            sig = shared_factory.make_valid()
            assert endpoint.add(sig.to_bytes(), token)
            next_index, blobs = endpoint.get(0)
            assert next_index == 1
            assert DeadlockSignature.from_bytes(blobs[0]).sig_id == sig.sig_id
        finally:
            endpoint.close()

    def test_rejection_propagates(self, live_server, shared_factory):
        server, host, port = live_server
        endpoint = TcpEndpoint(host, port)
        try:
            sig = shared_factory.make_valid()
            assert endpoint.add(sig.to_bytes(), "bogus-token") is False
        finally:
            endpoint.close()

    def test_persistent_connection_many_requests(self, live_server, shared_factory):
        server, host, port = live_server
        endpoint = TcpEndpoint(host, port)
        try:
            # Fresh token per add: adjacency is per-user and must not bite.
            for _ in range(5):
                token = endpoint.issue_token()
                assert endpoint.add(shared_factory.make_valid().to_bytes(), token)
            next_index, blobs = endpoint.get(0)
            assert next_index == 5
            assert len(blobs) == 5
        finally:
            endpoint.close()

    def test_concurrent_clients(self, live_server, shared_factory):
        server, host, port = live_server
        sigs = [shared_factory.make_valid() for _ in range(12)]
        failures = []

        def client(batch):
            endpoint = TcpEndpoint(host, port)
            try:
                for sig in batch:
                    token = endpoint.issue_token()
                    if not endpoint.add(sig.to_bytes(), token):
                        failures.append(sig.sig_id)
                endpoint.get(0)
            except Exception as exc:  # pragma: no cover
                failures.append(exc)
            finally:
                endpoint.close()

        threads = [
            threading.Thread(target=client, args=(sigs[i::3],)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert not failures
        unique = len({s.sig_id for s in sigs})
        assert len(server.database) == unique

    def test_unknown_op_returns_error(self, live_server):
        import socket as socket_module

        from repro.server.protocol import read_frame, write_frame
        from repro.util.encoding import canonical_json, from_canonical_json

        _, host, port = live_server
        sock = socket_module.create_connection((host, port), timeout=2.0)
        try:
            write_frame(sock, canonical_json({"op": "EXPLODE"}))
            response = from_canonical_json(read_frame(sock))
            assert response["ok"] is False
            assert "EXPLODE" in response["error"]
        finally:
            sock.close()

    def test_malformed_frame_closes_cleanly(self, live_server):
        import socket as socket_module

        _, host, port = live_server
        sock = socket_module.create_connection((host, port), timeout=2.0)
        try:
            sock.sendall(b"\xff\xff\xff\xff")  # absurd length header
            sock.settimeout(2.0)
            # Server drops the connection; recv returns EOF eventually.
            assert sock.recv(4096) == b""
        finally:
            sock.close()

    def test_stats_op(self, live_server, shared_factory):
        server, host, port = live_server
        endpoint = TcpEndpoint(host, port)
        try:
            token = endpoint.issue_token()
            endpoint.add(shared_factory.make_valid().to_bytes(), token)
            import socket as socket_module

            from repro.server.protocol import read_frame, write_frame
            from repro.util.encoding import canonical_json, from_canonical_json

            sock = socket_module.create_connection((host, port), timeout=2.0)
            try:
                write_frame(sock, canonical_json({"op": "STATS"}))
                stats = from_canonical_json(read_frame(sock))
                assert stats["ok"] and stats["database_size"] == 1
            finally:
                sock.close()
        finally:
            endpoint.close()


class TestEndpointRobustness:
    def test_endpoint_raises_when_server_gone(self, shared_factory):
        endpoint = TcpEndpoint("127.0.0.1", 1)  # nothing listens there
        with pytest.raises(ProtocolError):
            endpoint.get(0)
