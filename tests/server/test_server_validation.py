"""Server-side validator unit tests (§III-C2)."""

import random

import pytest

from repro.crypto.userid import UserIdAuthority
from repro.server.database import SignatureDatabase
from repro.server.ratelimit import DailyQuota
from repro.server.validation import ServerSideValidator, ServerVerdict, adjacent
from repro.util.clock import ManualClock


@pytest.fixture
def validator(manual_clock):
    authority = UserIdAuthority(rng=random.Random(4))
    database = SignatureDatabase()
    quota = DailyQuota(manual_clock, limit_per_day=10)
    return ServerSideValidator(authority, quota, database), authority, database


class TestAdjacentPredicate:
    def test_partial_overlap(self):
        a = frozenset({("c", "m", 1), ("c", "m", 2)})
        b = frozenset({("c", "m", 2), ("c", "m", 3)})
        assert adjacent(a, b)

    def test_equal_sets_not_adjacent(self):
        a = frozenset({("c", "m", 1)})
        assert not adjacent(a, frozenset(a))

    def test_disjoint_not_adjacent(self):
        a = frozenset({("c", "m", 1)})
        b = frozenset({("c", "m", 2)})
        assert not adjacent(a, b)

    def test_subset_is_adjacent(self):
        a = frozenset({("c", "m", 1)})
        b = frozenset({("c", "m", 1), ("c", "m", 2)})
        assert adjacent(a, b)


class TestTokenResolution:
    def test_valid_token_resolved(self, validator):
        val, authority, _ = validator
        token = authority.issue_for(77)
        assert val.resolve_uid(token) == 77

    def test_cache_hit_consistent(self, validator):
        val, authority, _ = validator
        token = authority.issue_for(5)
        assert val.resolve_uid(token) == val.resolve_uid(token) == 5

    def test_forged_token_none(self, validator):
        val, _, _ = validator
        assert val.resolve_uid("00" * 48) is None

    def test_garbage_token_none(self, validator):
        val, _, _ = validator
        assert val.resolve_uid("not hex at all") is None


class TestCheckAdd:
    def test_ok_path(self, validator, shared_factory):
        val, authority, _ = validator
        token = authority.issue_for(1)
        verdict, uid = val.check_add(shared_factory.make_valid(), token)
        assert verdict is ServerVerdict.OK
        assert uid == 1

    def test_bad_token(self, validator, shared_factory):
        val, _, _ = validator
        verdict, uid = val.check_add(shared_factory.make_valid(), "zz")
        assert verdict is ServerVerdict.BAD_TOKEN
        assert uid is None

    def test_quota_verdict(self, validator, shared_factory):
        val, authority, _ = validator
        token = authority.issue_for(2)
        for _ in range(10):
            val.check_add(shared_factory.make_valid(), token)
        verdict, _ = val.check_add(shared_factory.make_valid(), token)
        assert verdict is ServerVerdict.QUOTA_EXCEEDED

    def test_adjacent_same_user(self, validator, shared_factory):
        val, authority, database = validator
        token = authority.issue_for(3)
        a, b = shared_factory.make_adjacent_pair()
        verdict, uid = val.check_add(a, token)
        assert verdict is ServerVerdict.OK
        database.append(a, a.to_bytes(), uid)
        verdict, _ = val.check_add(b, token)
        assert verdict is ServerVerdict.ADJACENT

    def test_adjacent_across_users_allowed(self, validator, shared_factory):
        val, authority, database = validator
        a, b = shared_factory.make_adjacent_pair()
        token_a = authority.issue_for(10)
        token_b = authority.issue_for(11)
        verdict, uid = val.check_add(a, token_a)
        database.append(a, a.to_bytes(), uid)
        verdict, _ = val.check_add(b, token_b)
        assert verdict is ServerVerdict.OK
