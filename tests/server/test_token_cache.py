"""Bounded LRU token cache: eviction, counters, and stats plumbing."""

import random

from repro.crypto.userid import UserIdAuthority
from repro.server.database import SignatureDatabase
from repro.server.ratelimit import DailyQuota
from repro.server.server import CommunixServer, ServerConfig
from repro.server.validation import ServerSideValidator, TokenCache
from repro.util.clock import ManualClock


class TestTokenCache:
    def test_hit_miss_counters(self):
        cache = TokenCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = TokenCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now the eviction victim
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_capacity_floor_is_one(self):
        cache = TokenCache(0)
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 1
        assert cache.get("b") == 2

    def test_reput_refreshes_not_grows(self):
        cache = TokenCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 1)  # refresh
        cache.put("c", 3)  # evicts "b", the oldest
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_stats_dict(self):
        cache = TokenCache(8)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        assert cache.stats() == {
            "size": 1, "capacity": 8, "hits": 1, "misses": 1,
        }


def _validator(cache_size: int) -> tuple[ServerSideValidator, UserIdAuthority]:
    authority = UserIdAuthority(rng=random.Random(11))
    clock = ManualClock(start=1_000_000.0)
    validator = ServerSideValidator(
        authority, DailyQuota(clock, 10), SignatureDatabase(),
        token_cache_size=cache_size,
    )
    return validator, authority


class TestValidatorCaching:
    def test_repeat_token_hits_cache(self):
        validator, authority = _validator(64)
        token = authority.issue_for(7)
        assert validator.resolve_uid(token) == 7
        assert validator.resolve_uid(token) == 7
        cache = validator.token_cache
        assert cache.hits == 1
        assert cache.misses == 1

    def test_forged_tokens_never_cached(self):
        validator, _ = _validator(64)
        for i in range(10):
            assert validator.resolve_uid(f"deadbeef{i:02d}") is None
        assert len(validator.token_cache) == 0

    def test_cache_bounded_under_token_flood(self):
        validator, authority = _validator(4)
        for uid in range(1, 20):
            token = authority.issue_for(uid)
            assert validator.resolve_uid(token) == uid
        assert len(validator.token_cache) == 4


class TestServerStatsPlumbing:
    def test_cache_counters_surface_on_server_stats(self):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(2)),
            clock=ManualClock(start=1_000_000.0),
        )
        token = server.issue_user_token()
        assert server.validator.resolve_uid(token) is not None  # miss
        assert server.validator.resolve_uid(token) is not None  # hit
        stats = server.stats
        assert stats.token_cache_hits == 1
        assert stats.token_cache_misses == 1

    def test_config_cap_reaches_validator(self):
        server = CommunixServer(
            config=ServerConfig(token_cache_size=17),
            authority=UserIdAuthority(rng=random.Random(2)),
        )
        assert server.validator.token_cache.capacity == 17
