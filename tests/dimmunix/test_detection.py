"""Deadlock detection integration tests (real threads)."""

import threading
import time

import pytest

from repro.dimmunix.config import RECOVERY_NONE
from repro.dimmunix.events import EventKind
from repro.dimmunix.lock import DimmunixLock
from repro.dimmunix.runtime import DimmunixRuntime
from repro.sim.workloads import DiningPhilosophers, TwoLockProgram
from repro.util.errors import DeadlockError
from tests.conftest import make_fast_config


class TestTwoThreadDeadlock:
    def test_detects_and_extracts_signature(self, runtime):
        program = TwoLockProgram(runtime, "d1")
        result = program.run_once(collide=True)
        assert result.deadlocked
        assert len(result.deadlock_errors) == 1  # exactly one victim
        assert runtime.stats.deadlocks_detected == 1
        assert len(runtime.history) == 1

    def test_signature_structure(self, runtime):
        program = TwoLockProgram(runtime, "d2")
        program.run_once(collide=True)
        sig = runtime.history.snapshot()[0]
        assert len(sig.threads) == 2
        assert sig.origin == "local"
        for t in sig.threads:
            assert t.outer.depth >= 2
            assert t.inner.depth >= 2
            # Outer and inner lock statements live in the critical sections.
            assert "critical" in t.outer.top.method
            assert "critical" in t.inner.top.method

    def test_victim_error_carries_signature(self, runtime):
        program = TwoLockProgram(runtime, "d3")
        result = program.run_once(collide=True)
        err = result.deadlock_errors[0]
        assert err.signature is not None
        assert err.signature.sig_id == runtime.history.snapshot()[0].sig_id

    def test_same_deadlock_not_saved_twice(self, runtime):
        program = TwoLockProgram(runtime, "d4")
        # Clear history between runs so avoidance does not engage, but keep
        # runs colliding: the second deadlock has the same signature.
        first = program.run_once(collide=True)
        assert first.deadlocked
        saved = runtime.history.snapshot()
        runtime.history.clear()
        second = program.run_once(collide=True)
        assert second.deadlocked
        assert runtime.history.snapshot()[0].sig_id == saved[0].sig_id

    def test_events_emitted(self, runtime):
        program = TwoLockProgram(runtime, "d5")
        program.run_once(collide=True)
        assert runtime.events.count(EventKind.DEADLOCK_DETECTED) == 1
        assert runtime.events.count(EventKind.SIGNATURE_SAVED) == 1
        assert runtime.events.count(EventKind.VICTIM_RAISED) == 1


class TestRecoveryPolicies:
    def test_recovery_none_leaves_threads_blocked(self):
        config = make_fast_config(recovery_policy=RECOVERY_NONE)
        runtime = DimmunixRuntime(config=config)
        runtime.start()
        try:
            program = TwoLockProgram(runtime, "dn")
            result = program.run_once(collide=True, join_timeout=0.8)
            # Signature captured, but nobody is killed: threads stay stuck.
            assert result.timed_out
            assert not result.deadlock_errors
            assert len(runtime.history) == 1
        finally:
            runtime.stop()
            # Unblock the stuck threads so the process can exit cleanly:
            # re-enable recovery and run one detection pass manually.
            runtime.config.recovery_policy = "raise"
            runtime._active_incidents.clear()
            runtime.detect_now()
            time.sleep(0.2)


class TestMultiWayDeadlock:
    def test_three_philosophers_detected(self, runtime):
        table = DiningPhilosophers(runtime, seats=3)
        result = table.run_once(collide=True)
        assert result.deadlocked or result.completed
        if result.deadlock_errors:
            sig = runtime.history.snapshot()[0]
            assert 2 <= len(sig.threads) <= 3

    def test_detect_now_idempotent_per_incident(self, runtime):
        program = TwoLockProgram(runtime, "d6")
        result = program.run_once(collide=True)
        assert result.deadlocked
        # Extra passes must not double-count or designate more victims.
        runtime.detect_now()
        runtime.detect_now()
        assert runtime.stats.deadlocks_detected == 1
        assert runtime.stats.victims_designated == 1


class TestSelfDeadlock:
    def test_self_deadlock_detected_and_raised(self, runtime):
        lock = DimmunixLock(runtime, "self")
        caught = []

        def worker():
            lock.acquire()
            try:
                lock.acquire()  # non-reentrant: blocks on itself
            except DeadlockError as exc:
                caught.append(exc)
            finally:
                lock.release()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(5.0)
        assert not thread.is_alive()
        assert caught
        assert caught[0].signature is None  # no multi-thread signature
        assert runtime.stats.self_deadlocks == 1
        assert runtime.events.count(EventKind.SELF_DEADLOCK) == 1


class TestNestedSiteDiscovery:
    def test_nested_sites_recorded(self, runtime):
        outer = DimmunixLock(runtime, "outer")
        inner = DimmunixLock(runtime, "inner")

        def op():
            with outer:
                with inner:
                    pass

        thread = threading.Thread(target=op)
        thread.start()
        thread.join(2.0)
        sites = runtime.nested_sites
        assert len(sites) == 1
        ((module, method, line),) = sites
        assert method == "op"  # the *outer* acquisition site is nested
