"""Property-based tests for avoidance matching invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import DeadlockHistory
from repro.core.signature import CallStack, DeadlockSignature, Frame, ThreadSignature
from repro.dimmunix.avoidance import AvoidanceModule, ThreadView

SITES = [("app.M", f"site{i}", 10 * i) for i in range(1, 5)]


def frame(site, code_hash="ff" * 8):
    return Frame(site[0], site[1], site[2], code_hash)


def stack_for(site, prefix_len=1):
    frames = [Frame("app.M", f"caller{j}", 500 + j, "ff" * 8)
              for j in range(prefix_len)]
    frames.append(frame(site))
    return CallStack(frames)


site_pairs = st.lists(
    st.sampled_from(range(len(SITES))), min_size=2, max_size=3, unique=True
)


@st.composite
def histories(draw):
    history = DeadlockHistory()
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        indices = draw(site_pairs)
        threads = tuple(
            ThreadSignature(outer=stack_for(SITES[i]), inner=stack_for(SITES[i]))
            for i in indices
        )
        history.add(DeadlockSignature(threads=threads))
    return history


@st.composite
def world_states(draw):
    """Random other-thread states over the same site pool."""
    views = []
    used_locks = set()
    for tid in range(2, draw(st.integers(min_value=2, max_value=5))):
        view = ThreadView(tid=tid)
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            lock_id = draw(st.integers(min_value=100, max_value=120))
            if lock_id in used_locks:
                continue
            used_locks.add(lock_id)
            site = SITES[draw(st.integers(min_value=0, max_value=len(SITES) - 1))]
            view.held.append((lock_id, stack_for(site, prefix_len=2)))
        if view.held:
            views.append(view)
    return views


class TestAvoidanceInvariants:
    @given(histories(), world_states())
    @settings(max_examples=150, deadline=None)
    def test_no_danger_without_peers(self, history, views):
        module = AvoidanceModule(history)
        request_stack = stack_for(SITES[0], prefix_len=2)
        # With no other threads at all, no instantiation can complete.
        assert module.find_danger(1, 99, request_stack, []) is None

    @given(histories(), world_states())
    @settings(max_examples=150, deadline=None)
    def test_match_assignment_is_injective(self, history, views):
        module = AvoidanceModule(history)
        for site in SITES:
            match = module.find_danger(1, 99, stack_for(site, prefix_len=2), views)
            if match is None:
                continue
            tids = [t for t, _ in match.matched]
            locks = [l for _, l in match.matched]
            assert len(set(tids)) == len(tids)
            assert len(set(locks)) == len(locks)
            assert 1 not in tids  # never matches the requester itself
            assert 99 not in locks  # never reuses the requested lock

    @given(histories(), world_states())
    @settings(max_examples=150, deadline=None)
    def test_matched_positions_really_match(self, history, views):
        """Soundness: every reported match is a genuine instantiation."""
        module = AvoidanceModule(history)
        by_tid = {v.tid: v for v in views}
        for site in SITES:
            stack = stack_for(site, prefix_len=2)
            match = module.find_danger(1, 99, stack, views)
            if match is None:
                continue
            sig = match.signature
            assert sig.threads[match.position].outer.matches(stack)
            other_positions = [
                i for i in range(len(sig.threads)) if i != match.position
            ]
            assert len(match.matched) == len(other_positions)
            for (tid, lock_id) in match.matched:
                candidates = dict(by_tid[tid].held)
                assert lock_id in candidates

    @given(histories())
    @settings(max_examples=50, deadline=None)
    def test_clearing_history_clears_danger(self, history):
        module = AvoidanceModule(history)
        views = [ThreadView(tid=2, held=[(100, stack_for(SITES[1], 2))])]
        history.clear()
        for site in SITES:
            assert module.find_danger(1, 99, stack_for(site, 2), views) is None
