"""Instrumented lock API tests."""

import threading
import time

import pytest

from repro.dimmunix.lock import DimmunixLock, DimmunixRLock


class TestDimmunixLock:
    def test_acquire_release(self, runtime):
        lock = DimmunixLock(runtime, "L")
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        assert not lock.locked()

    def test_context_manager(self, runtime):
        lock = DimmunixLock(runtime, "L")
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_nonblocking_acquire(self, runtime):
        lock = DimmunixLock(runtime, "L")
        holder = threading.Thread(target=lambda: lock.acquire())
        holder.start()
        holder.join()
        assert lock.acquire(blocking=False) is False
        # Release from the holding thread side is not possible here; use a
        # fresh lock for the success case.
        free = DimmunixLock(runtime, "F")
        assert free.acquire(blocking=False) is True
        free.release()

    def test_timeout_expires(self, runtime):
        lock = DimmunixLock(runtime, "L")
        grabbed = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                grabbed.set()
                release.wait(3.0)

        thread = threading.Thread(target=holder)
        thread.start()
        assert grabbed.wait(2.0)
        started = time.monotonic()
        assert lock.acquire(timeout=0.15) is False
        assert 0.1 <= time.monotonic() - started < 1.5
        release.set()
        thread.join(2.0)

    def test_release_unheld_raises(self, runtime):
        lock = DimmunixLock(runtime, "L")
        with pytest.raises(RuntimeError):
            lock.release()

    def test_runtime_holder_bookkeeping(self, runtime):
        lock = DimmunixLock(runtime, "L")
        with lock:
            held = runtime.held_locks()
            assert held.get(lock.lock_id) == threading.get_ident()
        assert lock.lock_id not in runtime.held_locks()

    def test_distinct_lock_ids(self, runtime):
        a, b = DimmunixLock(runtime), DimmunixLock(runtime)
        assert a.lock_id != b.lock_id

    def test_disabled_runtime_passthrough(self, fast_config):
        from repro.dimmunix.runtime import DimmunixRuntime

        fast_config.enabled = False
        rt = DimmunixRuntime(config=fast_config)
        lock = DimmunixLock(rt, "L")
        with lock:
            assert rt.stats.acquisitions == 0  # no bookkeeping at all

    def test_thread_state_gc(self, runtime):
        lock = DimmunixLock(runtime, "L")

        def use():
            with lock:
                pass

        thread = threading.Thread(target=use)
        thread.start()
        thread.join()
        assert runtime.thread_count() == 0


class TestDimmunixRLock:
    def test_reentrant(self, runtime):
        rlock = DimmunixRLock(runtime, "R")
        with rlock:
            with rlock:
                with rlock:
                    pass
        assert runtime.stats.acquisitions == 1  # outermost only

    def test_release_by_non_owner_raises(self, runtime):
        rlock = DimmunixRLock(runtime, "R")
        rlock.acquire()
        errors = []

        def bad_release():
            try:
                rlock.release()
            except RuntimeError as exc:
                errors.append(exc)

        thread = threading.Thread(target=bad_release)
        thread.start()
        thread.join()
        assert errors
        rlock.release()

    def test_condition_compatibility(self, runtime):
        rlock = DimmunixRLock(runtime, "R")
        cond = threading.Condition(rlock)
        fired = []

        def waiter():
            with cond:
                fired.append(cond.wait(timeout=2.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        with cond:
            cond.notify()
        thread.join(2.0)
        assert fired == [True]

    def test_blocking_between_threads(self, runtime):
        rlock = DimmunixRLock(runtime, "R")
        order = []
        held = threading.Event()

        def first():
            with rlock:
                held.set()
                time.sleep(0.1)
                order.append("first-out")

        def second():
            held.wait(2.0)
            with rlock:
                order.append("second-in")

        threads = [threading.Thread(target=first), threading.Thread(target=second)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(3.0)
        assert order == ["first-out", "second-in"]
