"""Monkey-patching tests: immunizing unmodified code."""

import threading

from repro.dimmunix.lock import DimmunixLock, DimmunixRLock, patch_threading
from repro.dimmunix.runtime import DimmunixRuntime
from tests.conftest import make_fast_config


class TestPatchThreading:
    def test_locks_created_in_scope_are_instrumented(self):
        runtime = DimmunixRuntime(config=make_fast_config())
        runtime.start()
        try:
            with patch_threading(runtime):
                lock = threading.Lock()
                rlock = threading.RLock()
                assert isinstance(lock, DimmunixLock)
                assert isinstance(rlock, DimmunixRLock)
                with lock:
                    pass
            assert runtime.stats.acquisitions == 1
        finally:
            runtime.stop()

    def test_factories_restored_after_scope(self):
        original_lock = threading.Lock
        original_rlock = threading.RLock
        runtime = DimmunixRuntime(config=make_fast_config())
        with patch_threading(runtime):
            pass
        assert threading.Lock is original_lock
        assert threading.RLock is original_rlock

    def test_restored_even_on_exception(self):
        original_lock = threading.Lock
        runtime = DimmunixRuntime(config=make_fast_config())
        try:
            with patch_threading(runtime):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert threading.Lock is original_lock

    def test_unpatched_locks_untouched(self):
        before = threading.Lock()
        runtime = DimmunixRuntime(config=make_fast_config())
        with patch_threading(runtime):
            pass
        assert not isinstance(before, DimmunixLock)

    def test_patched_program_gets_immunity(self):
        """An unmodified AB/BA program, immunized purely via patching."""
        runtime = DimmunixRuntime(config=make_fast_config())
        runtime.start()
        try:
            with patch_threading(runtime):
                lock_a = threading.Lock()
                lock_b = threading.Lock()

            from repro.util.errors import DeadlockError

            results = {"errors": 0}
            e1, e2 = threading.Event(), threading.Event()

            def t1():
                try:
                    with lock_a:
                        e1.set()
                        e2.wait(0.5)
                        with lock_b:
                            pass
                except DeadlockError:
                    results["errors"] += 1

            def t2():
                try:
                    with lock_b:
                        e2.set()
                        e1.wait(0.5)
                        with lock_a:
                            pass
                except DeadlockError:
                    results["errors"] += 1

            threads = [threading.Thread(target=t1), threading.Thread(target=t2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(5.0)
            assert results["errors"] == 1
            assert len(runtime.history) == 1
        finally:
            runtime.stop()

    def test_default_global_runtime_used(self):
        from repro.dimmunix.lock import get_runtime, set_runtime

        replacement = DimmunixRuntime(config=make_fast_config())
        previous = set_runtime(replacement)
        try:
            with patch_threading() as active:
                assert active is replacement
                lock = threading.Lock()
                with lock:
                    pass
            assert replacement.stats.acquisitions == 1
        finally:
            set_runtime(previous)
            replacement.stop()
