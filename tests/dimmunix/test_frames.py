"""Stack capture tests."""

from repro.dimmunix.frames import capture_stack, python_code_hash


def _inner(depth_limit=32, blacklist=()):
    return capture_stack(skip=0, limit=depth_limit, blacklist=blacklist)


def _outer(**kwargs):
    return _inner(**kwargs)


class TestCaptureStack:
    def test_top_frame_is_capture_site(self):
        stack = _inner()
        assert stack.top.method == "_inner"

    def test_bottom_to_top_order(self):
        stack = _outer()
        methods = [f.method for f in stack]
        assert methods.index("_outer") < methods.index("_inner")

    def test_limit_respected(self):
        stack = _outer(depth_limit=2)
        assert stack.depth == 2
        assert stack.top.method == "_inner"

    def test_blacklist_filters_modules(self):
        stack = _outer(blacklist=("tests.dimmunix",))
        assert all(not f.class_name.startswith("tests.dimmunix") for f in stack)

    def test_frames_carry_code_hashes(self):
        stack = _inner()
        assert all(f.code_hash for f in stack)

    def test_lines_are_call_sites(self):
        stack = _outer()
        inner_frame = next(f for f in stack if f.method == "_inner")
        assert inner_frame.line > 0

    def test_same_call_path_same_locations(self):
        # Both captures must start from the same call site (one line).
        a, b = [_outer() for _ in range(2)]
        assert a.locations() == b.locations()


class TestCodeHash:
    def test_stable_per_code_object(self):
        code = _inner.__code__
        assert python_code_hash(code) == python_code_hash(code)

    def test_different_functions_differ(self):
        def f():
            return 1

        def g():
            return 2

        assert python_code_hash(f.__code__) != python_code_hash(g.__code__)

    def test_identical_bodies_share_hash(self):
        # The hash covers co_code only: two functions compiled from the same
        # body hash equal, which is fine (same "bytecode").
        def f():
            return 42

        def g():
            return 42

        assert python_code_hash(f.__code__) == python_code_hash(g.__code__)
