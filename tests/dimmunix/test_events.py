"""Event log tests."""

from repro.dimmunix.events import EventKind, EventLog


class TestEmitSubscribe:
    def test_emit_returns_event(self):
        log = EventLog()
        event = log.emit(EventKind.SIGNATURE_SAVED, sig_id="x")
        assert event.kind is EventKind.SIGNATURE_SAVED
        assert event.payload == {"sig_id": "x"}

    def test_subscribers_called(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit(EventKind.AVOIDANCE_BLOCK, tid=1)
        assert len(seen) == 1

    def test_unsubscribe(self):
        log = EventLog()
        seen = []
        unsubscribe = log.subscribe(seen.append)
        unsubscribe()
        log.emit(EventKind.AVOIDANCE_BLOCK)
        assert seen == []

    def test_count_per_kind(self):
        log = EventLog()
        log.emit(EventKind.AVOIDANCE_BLOCK)
        log.emit(EventKind.AVOIDANCE_BLOCK)
        log.emit(EventKind.AVOIDANCE_RESUME)
        assert log.count(EventKind.AVOIDANCE_BLOCK) == 2
        assert log.count(EventKind.AVOIDANCE_RESUME) == 1
        assert log.count(EventKind.SELF_DEADLOCK) == 0


class TestRingBuffer:
    def test_recent_filtered_by_kind(self):
        log = EventLog()
        log.emit(EventKind.AVOIDANCE_BLOCK, tid=1)
        log.emit(EventKind.AVOIDANCE_RESUME, tid=1)
        blocks = log.recent(EventKind.AVOIDANCE_BLOCK)
        assert len(blocks) == 1

    def test_capacity_bounds_buffer(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit(EventKind.AVOIDANCE_BLOCK, i=i)
        recent = log.recent()
        assert len(recent) == 4
        assert recent[-1].payload["i"] == 9
        # Counts are not truncated by the ring buffer.
        assert log.count(EventKind.AVOIDANCE_BLOCK) == 10
