"""Avoidance integration tests: immunity, serialization, yield resolution."""

import threading
import time

from repro.dimmunix.events import EventKind
from repro.dimmunix.lock import DimmunixLock
from repro.dimmunix.runtime import DimmunixRuntime
from repro.sim.workloads import DiningPhilosophers, TwoLockProgram
from tests.conftest import make_fast_config


class TestImmunityAfterFirstDeadlock:
    def test_second_run_avoids_deadlock(self, runtime):
        program = TwoLockProgram(runtime, "imm1")
        first = program.run_once(collide=True)
        assert first.deadlocked
        second = program.run_once(collide=True)
        assert not second.deadlocked
        assert sorted(second.completed) == ["t1", "t2"]
        assert runtime.stats.deadlocks_detected == 1  # never again
        assert runtime.stats.avoidance_blocks >= 1

    def test_many_protected_runs_stay_clean(self, runtime):
        program = TwoLockProgram(runtime, "imm2")
        program.run_once(collide=True)
        for _ in range(5):
            result = program.run_once(collide=True)
            assert not result.deadlocked
        assert runtime.stats.deadlocks_detected == 1

    def test_avoidance_events_flow(self, runtime):
        program = TwoLockProgram(runtime, "imm3")
        program.run_once(collide=True)
        program.run_once(collide=True)
        assert runtime.events.count(EventKind.AVOIDANCE_BLOCK) >= 1
        assert runtime.events.count(EventKind.AVOIDANCE_RESUME) >= 1

    def test_fp_instantiations_recorded(self, runtime):
        program = TwoLockProgram(runtime, "imm4")
        program.run_once(collide=True)
        sig = runtime.history.snapshot()[0]
        program.run_once(collide=True)
        assert runtime.fp.instantiations(sig.sig_id) >= 1

    def test_unrelated_locks_not_serialized(self, runtime):
        program = TwoLockProgram(runtime, "imm5")
        program.run_once(collide=True)
        # Locks acquired at sites not covered by the signature fly through.
        other = DimmunixLock(runtime, "unrelated")
        blocks_before = runtime.stats.avoidance_blocks
        for _ in range(50):
            with other:
                pass
        assert runtime.stats.avoidance_blocks == blocks_before


class TestPhilosopherImmunity:
    def test_philosophers_protected_after_first_cycle(self, runtime):
        table = DiningPhilosophers(runtime, seats=3)
        first = table.run_once(collide=True)
        if not first.deadlock_errors:
            return  # scheduling did not produce the deadlock; nothing to test
        second = table.run_once(collide=True)
        assert not second.deadlock_errors


class TestAvoidanceInducedCycleResolution:
    def test_yield_permit_breaks_avoidance_cycle(self):
        """Construct a state where two threads would suspend each other in
        avoidance forever; the detector must grant a yield permit."""
        config = make_fast_config()
        runtime = DimmunixRuntime(config=config)
        runtime.start()
        try:
            program = TwoLockProgram(runtime, "ay")
            first = program.run_once(collide=True)
            assert first.deadlocked

            # Both threads try to take their *first* lock simultaneously and
            # repeatedly; with the signature in history, one of them blocks
            # in avoidance whenever the other holds its lock.  Interleaved
            # hold-and-retry loops eventually produce the mutual-suspension
            # state; the yield path must keep everything live.
            stop = threading.Event()
            errors = []

            def hammer(entry):
                try:
                    while not stop.is_set():
                        result = program.run_once(collide=True, join_timeout=5.0)
                        if result.timed_out:
                            errors.append("stuck")
                            return
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            thread = threading.Thread(target=hammer, args=(None,))
            thread.start()
            time.sleep(1.0)
            stop.set()
            thread.join(8.0)
            assert not thread.is_alive()
            assert not errors
        finally:
            runtime.stop()

    def test_max_avoidance_block_safety_valve(self):
        config = make_fast_config(max_avoidance_block=0.1)
        runtime = DimmunixRuntime(config=config)
        runtime.start()
        try:
            program = TwoLockProgram(runtime, "valve")
            program.run_once(collide=True)
            # Hold lock B forever from a foreign thread with a matching
            # stack is hard to fake; instead verify the valve fires during a
            # protected run under sustained contention.
            for _ in range(3):
                result = program.run_once(collide=True)
                assert not result.timed_out
        finally:
            runtime.stop()


class TestHistoryGrowthAtRuntime:
    def test_signatures_added_mid_run_take_effect(self, runtime):
        # Avoidance index must pick up history changes (version bump).
        program = TwoLockProgram(runtime, "mid")
        first = program.run_once(collide=True)
        assert first.deadlocked
        sig = runtime.history.snapshot()[0]
        runtime.history.clear()
        assert runtime.history.version > 0
        unprotected = program.run_once(collide=True)
        assert unprotected.deadlocked  # cleared history -> vulnerable again
        runtime.history.add(sig)
        protected = program.run_once(collide=True)
        assert not protected.deadlocked
