"""Unit tests for the avoidance matching logic (no real threads)."""

from repro.core.history import DeadlockHistory
from repro.core.signature import CallStack, DeadlockSignature, Frame, ThreadSignature
from repro.dimmunix.avoidance import AvoidanceModule, ThreadView


def fr(method, line, cls="app.W"):
    return Frame(cls, method, line, "dd" * 8)


def stack(*frames):
    return CallStack(frames)


# A two-position signature: position A = acquire at siteA, position B = siteB.
SITE_A = [fr("pathA", 1), fr("siteA", 10)]
SITE_B = [fr("pathB", 2), fr("siteB", 20)]


def two_pos_signature():
    return DeadlockSignature(
        threads=(
            ThreadSignature(outer=stack(*SITE_A), inner=stack(fr("innerA", 11))),
            ThreadSignature(outer=stack(*SITE_B), inner=stack(fr("innerB", 21))),
        ),
        origin="local",
    )


def runtime_stack_a():
    return stack(fr("main", 0), fr("pathA", 1), fr("siteA", 10))


def runtime_stack_b():
    return stack(fr("main", 0), fr("pathB", 2), fr("siteB", 20))


class TestIndexing:
    def test_empty_history_no_danger(self):
        module = AvoidanceModule(DeadlockHistory())
        assert module.find_danger(1, 100, runtime_stack_a(), []) is None

    def test_index_rebuilds_on_history_change(self):
        history = DeadlockHistory()
        module = AvoidanceModule(history)
        assert module.find_danger(1, 100, runtime_stack_a(), []) is None
        history.add(two_pos_signature())
        views = [ThreadView(tid=2, held=[(200, runtime_stack_b())])]
        assert module.find_danger(1, 100, runtime_stack_a(), views) is not None

    def test_unrelated_site_is_cheap_miss(self):
        history = DeadlockHistory()
        history.add(two_pos_signature())
        module = AvoidanceModule(history)
        other = stack(fr("elsewhere", 99))
        before = module.deep_checks
        assert module.find_danger(1, 100, other, []) is None
        assert module.deep_checks == before  # index miss, no deep work


class TestPatternCompletion:
    def setup_method(self):
        self.history = DeadlockHistory()
        self.history.add(two_pos_signature())
        self.module = AvoidanceModule(self.history)

    def test_blocks_when_other_holds_matching_lock(self):
        views = [ThreadView(tid=2, held=[(200, runtime_stack_b())])]
        match = self.module.find_danger(1, 100, runtime_stack_a(), views)
        assert match is not None
        assert match.matched == ((2, 200),)

    def test_blocks_when_other_waits_with_matching_stack(self):
        views = [ThreadView(tid=2, waiting=(200, runtime_stack_b()))]
        assert self.module.find_danger(1, 100, runtime_stack_a(), views) is not None

    def test_no_block_without_peer(self):
        assert self.module.find_danger(1, 100, runtime_stack_a(), []) is None

    def test_no_block_when_peer_stack_differs(self):
        views = [ThreadView(tid=2, held=[(200, runtime_stack_a())])]
        # Peer is at siteA too; position B has no filler -> no instantiation.
        assert self.module.find_danger(1, 100, runtime_stack_a(), views) is None

    def test_same_lock_cannot_fill_two_positions(self):
        views = [ThreadView(tid=2, held=[(100, runtime_stack_b())])]
        # Peer holds the SAME lock the requester asks for: locks must be
        # distinct, so no instantiation.
        assert self.module.find_danger(1, 100, runtime_stack_a(), views) is None

    def test_same_thread_cannot_fill_two_positions(self):
        views = [ThreadView(tid=1, held=[(200, runtime_stack_b())])]
        # Only view belongs to the requesting thread itself (excluded by
        # construction in the runtime, but the matcher must not rely on it).
        match = self.module.find_danger(1, 100, runtime_stack_a(), views)
        assert match is None

    def test_suffix_matching_not_exact(self):
        deep = stack(fr("extra", 5), fr("main", 0), fr("pathB", 2), fr("siteB", 20))
        views = [ThreadView(tid=2, held=[(200, deep)])]
        assert self.module.find_danger(1, 100, runtime_stack_a(), views) is not None

    def test_requester_can_fill_either_position(self):
        views = [ThreadView(tid=2, held=[(100, runtime_stack_a())])]
        match = self.module.find_danger(1, 200, runtime_stack_b(), views)
        assert match is not None
        assert match.position == 1 or match.position == 0


class TestThreePositionSignatures:
    def test_three_way_pattern(self):
        site_c = [fr("pathC", 3), fr("siteC", 30)]
        sig = DeadlockSignature(
            threads=(
                ThreadSignature(outer=stack(*SITE_A), inner=stack(fr("iA", 1))),
                ThreadSignature(outer=stack(*SITE_B), inner=stack(fr("iB", 2))),
                ThreadSignature(outer=stack(*site_c), inner=stack(fr("iC", 3))),
            ),
        )
        history = DeadlockHistory()
        history.add(sig)
        module = AvoidanceModule(history)
        runtime_c = stack(fr("pathC", 3), fr("siteC", 30))
        # Only one peer present: no instantiation possible yet.
        one_peer = [ThreadView(tid=2, held=[(200, runtime_stack_b())])]
        assert module.find_danger(1, 100, runtime_stack_a(), one_peer) is None
        # Two peers with distinct locks complete the pattern.
        two_peers = one_peer + [ThreadView(tid=3, held=[(300, runtime_c)])]
        match = module.find_danger(1, 100, runtime_stack_a(), two_peers)
        assert match is not None
        assert len(match.matched) == 2
