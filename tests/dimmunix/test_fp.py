"""False-positive detector tests (§III-C1) under a manual clock."""

from repro.dimmunix.config import DimmunixConfig
from repro.dimmunix.events import EventKind, EventLog
from repro.dimmunix.fp import FalsePositiveDetector
from repro.util.clock import ManualClock


def make_fp(clock, **config_overrides):
    config = DimmunixConfig(**config_overrides)
    events = EventLog()
    return FalsePositiveDetector(config, clock, events), events


def burst(fp, clock, sig_id, count, spacing=0.01):
    for _ in range(count):
        fp.record_instantiation(sig_id)
        clock.advance(spacing)


class TestWarningCondition:
    def test_warns_after_threshold_with_burst(self):
        clock = ManualClock()
        fp, events = make_fp(clock)
        burst(fp, clock, "sig", 100, spacing=0.05)  # 20/sec: bursty
        assert fp.is_warned("sig")
        assert events.count(EventKind.FALSE_POSITIVE_WARNING) == 1

    def test_no_warning_without_burst(self):
        clock = ManualClock()
        fp, events = make_fp(clock)
        # 150 instantiations but spread out: never >10 in any 1s window.
        burst(fp, clock, "sig", 150, spacing=0.2)
        assert not fp.is_warned("sig")

    def test_no_warning_below_threshold(self):
        clock = ManualClock()
        fp, events = make_fp(clock)
        burst(fp, clock, "sig", 99, spacing=0.01)
        assert not fp.is_warned("sig")

    def test_burst_remembered_across_quiet_period(self):
        clock = ManualClock()
        fp, events = make_fp(clock)
        burst(fp, clock, "sig", 20, spacing=0.01)  # early burst
        clock.advance(100.0)
        burst(fp, clock, "sig", 80, spacing=5.0)  # slow tail to 100 total
        assert fp.is_warned("sig")

    def test_warning_emitted_once(self):
        clock = ManualClock()
        fp, events = make_fp(clock)
        burst(fp, clock, "sig", 200, spacing=0.01)
        assert events.count(EventKind.FALSE_POSITIVE_WARNING) == 1


class TestTruePositivesAndKeep:
    def test_true_positive_suppresses_warning(self):
        clock = ManualClock()
        fp, events = make_fp(clock)
        fp.record_true_positive("sig")
        burst(fp, clock, "sig", 200, spacing=0.01)
        assert not fp.is_warned("sig")

    def test_user_keep_suppresses_warning(self):
        clock = ManualClock()
        fp, events = make_fp(clock)
        fp.keep("sig")
        burst(fp, clock, "sig", 200, spacing=0.01)
        assert not fp.is_warned("sig")
        assert events.count(EventKind.FALSE_POSITIVE_WARNING) == 0


class TestAccounting:
    def test_instantiation_counts_per_signature(self):
        clock = ManualClock()
        fp, _ = make_fp(clock)
        burst(fp, clock, "a", 5)
        burst(fp, clock, "b", 3)
        assert fp.instantiations("a") == 5
        assert fp.instantiations("b") == 3
        assert fp.instantiations("missing") == 0

    def test_custom_thresholds(self):
        clock = ManualClock()
        fp, events = make_fp(
            clock, fp_instantiation_threshold=5, fp_burst_count=2,
            fp_burst_window=10.0,
        )
        burst(fp, clock, "sig", 5, spacing=0.5)
        assert fp.is_warned("sig")
