"""Control-flow graph construction tests."""

import pytest

from repro.appmodel.cfg import ControlFlowGraph
from repro.appmodel.classfile import MethodBuilder


def straight_method():
    mb = MethodBuilder("C", "m")
    mb.nop()
    mb.nop()
    return mb.build()


def branching_method():
    # 0: IF -> 3 ; 1: NOP ; 2: GOTO 4 ; 3: NOP ; 4: RETURN
    mb = MethodBuilder("C", "m")
    branch = mb.branch(0)
    mb.nop()
    goto = mb.goto(0)
    taken = mb.nop()
    ret = mb.ret()
    mb.patch_target(branch, taken)
    mb.patch_target(goto, ret)
    return mb.build()


class TestSuccessors:
    def test_straight_line_chain(self):
        cfg = ControlFlowGraph(straight_method())
        assert cfg.successors(0) == (1,)
        assert cfg.successors(1) == (2,)
        assert cfg.successors(2) == ()  # the auto RETURN

    def test_branching(self):
        cfg = ControlFlowGraph(branching_method())
        assert cfg.successors(0) == (3, 1)
        assert cfg.successors(2) == (4,)

    def test_no_cfg_method_rejected(self):
        method = straight_method()
        method.has_cfg = False
        with pytest.raises(ValueError):
            ControlFlowGraph(method)


class TestReachability:
    def test_all_reachable_in_branching(self):
        cfg = ControlFlowGraph(branching_method())
        assert cfg.reachable_from(0) == {0, 1, 2, 3, 4}

    def test_partial_reachability(self):
        cfg = ControlFlowGraph(branching_method())
        assert cfg.reachable_from(3) == {3, 4}


class TestBasicBlocks:
    def test_straight_line_single_block(self):
        cfg = ControlFlowGraph(straight_method())
        blocks = cfg.basic_blocks()
        assert len(blocks) == 1
        assert (blocks[0].start, blocks[0].end) == (0, 2)

    def test_branching_blocks(self):
        cfg = ControlFlowGraph(branching_method())
        blocks = cfg.basic_blocks()
        starts = [b.start for b in blocks]
        assert starts == [0, 1, 3, 4]
        assert all(len(b) >= 1 for b in blocks)

    def test_empty_method(self):
        mb = MethodBuilder("C", "m")
        method = mb.build()  # just the auto RETURN
        blocks = ControlFlowGraph(method).basic_blocks()
        assert len(blocks) == 1
