"""Nesting analysis tests (§III-C3 algorithm)."""

from repro.appmodel.classfile import MethodBuilder
from repro.appmodel.nesting import NestingAnalysis


def analyze(*methods):
    table = {m.ref: m for m in methods}
    analysis = NestingAnalysis(table)
    report = analysis.analyze_all()
    return report


class TestBlockNesting:
    def test_plain_block_not_nested(self):
        mb = MethodBuilder("C", "m", first_line=10)
        mb.monitor_enter()
        mb.nop()
        mb.monitor_exit()
        report = analyze(mb.build())
        assert report.total_sites == 1
        assert report.analyzed_sites == 1
        assert report.nested_count == 0

    def test_block_nesting_detected(self):
        mb = MethodBuilder("C", "m", first_line=10)
        outer = mb.monitor_enter()
        mb.monitor_enter()
        mb.monitor_exit()
        mb.monitor_exit()
        method = mb.build()
        report = analyze(method)
        assert report.total_sites == 2
        assert report.nested_count == 1
        outer_line = method.instructions[outer].line
        assert ("C", "m", outer_line) in report.nested_sites

    def test_inner_block_is_non_nested(self):
        mb = MethodBuilder("C", "m", first_line=10)
        mb.monitor_enter()
        inner = mb.monitor_enter()
        mb.monitor_exit()
        mb.monitor_exit()
        method = mb.build()
        report = analyze(method)
        inner_line = method.instructions[inner].line
        assert ("C", "m", inner_line) in report.non_nested_sites


class TestInvokeNesting:
    def test_call_to_synchronized_method_makes_nested(self):
        helper = MethodBuilder("C", "helper", synchronized_method=True)
        helper.nop()
        helper_m = helper.build()
        mb = MethodBuilder("C", "m", first_line=10)
        mb.monitor_enter()
        mb.invoke("C.helper")
        mb.monitor_exit()
        report = analyze(mb.build(), helper_m)
        # The outer block is nested; the helper's desugared block is not.
        assert report.nested_count == 1
        assert report.total_sites == 2

    def test_transitive_call_chain(self):
        a = MethodBuilder("C", "a")
        a.invoke("C.b")
        b = MethodBuilder("C", "b")
        b.monitor_enter()
        b.nop()
        b.monitor_exit()
        mb = MethodBuilder("C", "m", first_line=5)
        mb.monitor_enter()
        mb.invoke("C.a")
        mb.monitor_exit()
        report = analyze(mb.build(), a.build(), b.build())
        assert report.nested_count == 1

    def test_harmless_call_skipped_over(self):
        noop = MethodBuilder("C", "noop")
        noop.nop()
        mb = MethodBuilder("C", "m")
        mb.monitor_enter()
        mb.invoke("C.noop")
        mb.monitor_exit()
        report = analyze(mb.build(), noop.build())
        assert report.nested_count == 0

    def test_unknown_callee_treated_as_harmless(self):
        mb = MethodBuilder("C", "m")
        mb.monitor_enter()
        mb.invoke("jdk.Unknown.m")
        mb.monitor_exit()
        report = analyze(mb.build())
        assert report.nested_count == 0


class TestBranches:
    def test_nested_on_branch_taken_path(self):
        # enter ; IF -> inner-enter path ; fallthrough exits first
        mb = MethodBuilder("C", "m", first_line=20)
        mb.monitor_enter()
        branch = mb.branch(0)
        mb.nop()
        goto = mb.goto(0)
        inner = mb.monitor_enter()  # taken path hits another enter
        mb.monitor_exit()
        exit_index = mb.monitor_exit()
        mb.patch_target(branch, inner)
        mb.patch_target(goto, exit_index)
        report = analyze(mb.build())
        # BFS visits the branch target first: nested.
        method_sites = {site for site in report.nested_sites}
        assert len(method_sites) == 1

    def test_both_paths_exit_non_nested(self):
        mb = MethodBuilder("C", "m", first_line=30)
        mb.monitor_enter()
        branch = mb.branch(0)
        mb.nop()
        goto = mb.goto(0)
        taken = mb.nop()
        exit_index = mb.monitor_exit()
        mb.patch_target(branch, taken)
        mb.patch_target(goto, exit_index)
        report = analyze(mb.build())
        assert report.nested_count == 0


class TestSootCoverageGaps:
    def test_no_cfg_sites_unanalyzed(self):
        mb = MethodBuilder("C", "m", has_cfg=False)
        mb.monitor_enter()
        mb.nop()
        mb.monitor_exit()
        report = analyze(mb.build())
        assert report.total_sites == 1
        assert report.analyzed_sites == 0
        assert len(report.unanalyzed_sites) == 1

    def test_mixed_coverage_accounting(self):
        opaque = MethodBuilder("C", "opaque", has_cfg=False)
        opaque.monitor_enter()
        opaque.monitor_exit()
        clear = MethodBuilder("C", "clear")
        clear.monitor_enter()
        clear.monitor_exit()
        report = analyze(opaque.build(), clear.build())
        assert report.total_sites == 2
        assert report.analyzed_sites == 1


class TestSynchronizedMethods:
    def test_sync_method_desugared_and_counted(self):
        mb = MethodBuilder("C", "s", synchronized_method=True)
        mb.nop()
        report = analyze(mb.build())
        assert report.total_sites == 1
        assert report.nested_count == 0

    def test_sync_method_calling_sync_method_nested(self):
        a = MethodBuilder("C", "a", synchronized_method=True)
        a.invoke("C.b")
        b = MethodBuilder("C", "b", synchronized_method=True)
        b.nop()
        report = analyze(a.build(), b.build())
        assert report.total_sites == 2
        assert report.nested_count == 1


class TestLatentNesting:
    def test_new_class_uncovers_nesting(self):
        """'Adding new classes to the CFG can only uncover new nested
        synchronized blocks/methods.'"""
        host = MethodBuilder("C", "m", first_line=10)
        host.monitor_enter()
        host.invoke("Ext.helper")
        host.monitor_exit()
        host_m = host.build()

        before = analyze(host_m)
        assert before.nested_count == 0

        helper = MethodBuilder("Ext", "helper", synchronized_method=True)
        helper.nop()
        after = analyze(host_m, helper.build())
        assert after.nested_count == 1
