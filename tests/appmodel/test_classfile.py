"""Class file, method builder, and desugaring tests."""

import pytest

from repro.appmodel.bytecode import Opcode
from repro.appmodel.classfile import ClassFile, Method, MethodBuilder, make_ref, split_ref


class TestRefs:
    def test_make_and_split(self):
        ref = make_ref("a.b.C", "m")
        assert ref == "a.b.C.m"
        assert split_ref(ref) == ("a.b.C", "m")


class TestMethodBuilder:
    def test_auto_return_appended(self):
        method = MethodBuilder("C", "m").build()
        assert method.instructions[-1].opcode is Opcode.RETURN

    def test_no_double_return(self):
        mb = MethodBuilder("C", "m")
        mb.ret()
        method = mb.build()
        assert sum(1 for i in method.instructions if i.opcode is Opcode.RETURN) == 1

    def test_patch_target(self):
        mb = MethodBuilder("C", "m")
        idx = mb.goto(0)
        mb.nop()
        mb.patch_target(idx, 1)
        assert mb.build().instructions[idx].operand == 1

    def test_patch_target_rejects_non_branch(self):
        mb = MethodBuilder("C", "m")
        idx = mb.nop()
        with pytest.raises(ValueError):
            mb.patch_target(idx, 0)

    def test_line_numbers_monotone(self):
        mb = MethodBuilder("C", "m", first_line=100)
        mb.nop()
        mb.nop()
        method = mb.build()
        lines = [i.line for i in method.instructions]
        assert lines == sorted(lines)
        assert lines[0] == 100


class TestDesugaring:
    def _sync_method(self, body_ops=("nop",)):
        mb = MethodBuilder("C", "m", first_line=10, synchronized_method=True)
        for op in body_ops:
            getattr(mb, op)()
        return mb.build()

    def test_wraps_body_in_monitor_pair(self):
        desugared = self._sync_method().desugared()
        opcodes = [i.opcode for i in desugared.instructions]
        assert opcodes[0] is Opcode.MONITORENTER
        assert Opcode.MONITOREXIT in opcodes
        assert opcodes[-1] is Opcode.RETURN
        assert not desugared.synchronized_method

    def test_returns_redirected_to_exit(self):
        desugared = self._sync_method(("nop", "ret")).desugared()
        # The body's RETURN must become a GOTO to the shared exit sequence.
        gotos = [i for i in desugared.instructions if i.opcode is Opcode.GOTO]
        assert len(gotos) == 1
        target = int(gotos[0].operand)
        assert desugared.instructions[target].opcode is Opcode.MONITOREXIT

    def test_non_sync_method_unchanged(self):
        mb = MethodBuilder("C", "m")
        mb.nop()
        method = mb.build()
        assert method.desugared() is method

    def test_desugaring_preserves_ref_and_cfg_flag(self):
        method = self._sync_method()
        method.has_cfg = False
        desugared = method.desugared()
        assert desugared.ref == method.ref
        assert desugared.has_cfg is False


class TestClassFile:
    def _cls(self, padding=b""):
        cls = ClassFile(name="p.K", padding=padding)
        mb = MethodBuilder("p.K", "m")
        mb.nop()
        cls.add_method(mb.build())
        return cls

    def test_hash_stable(self):
        assert self._cls().bytecode_hash() == self._cls().bytecode_hash()

    def test_hash_changes_with_code(self):
        a = self._cls()
        b = ClassFile(name="p.K")
        mb = MethodBuilder("p.K", "m")
        mb.nop()
        mb.nop()
        b.add_method(mb.build())
        assert a.bytecode_hash() != b.bytecode_hash()

    def test_hash_changes_with_padding(self):
        assert self._cls().bytecode_hash() != self._cls(b"pad").bytecode_hash()

    def test_method_order_irrelevant(self):
        a = ClassFile(name="p.K")
        b = ClassFile(name="p.K")
        for name_order in (("m1", "m2"), ("m2", "m1")):
            target = a if name_order == ("m1", "m2") else b
            for name in name_order:
                mb = MethodBuilder("p.K", name)
                mb.nop()
                target.add_method(mb.build())
        assert a.bytecode_hash() == b.bytecode_hash()

    def test_wrong_class_method_rejected(self):
        cls = ClassFile(name="p.K")
        mb = MethodBuilder("other.C", "m")
        with pytest.raises(ValueError):
            cls.add_method(mb.build())
