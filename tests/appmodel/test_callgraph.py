"""Call graph and may-reach-synchronization tests."""

from repro.appmodel.callgraph import CallGraph
from repro.appmodel.classfile import MethodBuilder


def method(cls, name, invokes=(), sync=False, monitor=False):
    mb = MethodBuilder(cls, name, synchronized_method=sync)
    if monitor:
        mb.monitor_enter()
        mb.nop()
        mb.monitor_exit()
    else:
        mb.nop()
    for target in invokes:
        mb.invoke(target)
    return mb.build()


def graph(*methods):
    return CallGraph({m.ref: m for m in methods})


class TestDirectSync:
    def test_synchronized_method(self):
        cg = graph(method("C", "s", sync=True))
        assert cg.is_directly_synchronized("C.s")

    def test_monitor_block(self):
        cg = graph(method("C", "b", monitor=True))
        assert cg.is_directly_synchronized("C.b")

    def test_plain_method(self):
        cg = graph(method("C", "p"))
        assert not cg.is_directly_synchronized("C.p")

    def test_unknown_ref(self):
        cg = graph()
        assert not cg.is_directly_synchronized("ghost.G.m")


class TestMayReachSync:
    def test_direct(self):
        cg = graph(method("C", "s", sync=True))
        assert cg.may_reach_sync("C.s")

    def test_one_hop(self):
        cg = graph(
            method("C", "caller", invokes=["C.target"]),
            method("C", "target", sync=True),
        )
        assert cg.may_reach_sync("C.caller")

    def test_transitive_chain(self):
        cg = graph(
            method("C", "a", invokes=["C.b"]),
            method("C", "b", invokes=["C.c"]),
            method("C", "c", invokes=["C.d"]),
            method("C", "d", monitor=True),
        )
        assert cg.may_reach_sync("C.a")

    def test_negative(self):
        cg = graph(
            method("C", "a", invokes=["C.b"]),
            method("C", "b"),
        )
        assert not cg.may_reach_sync("C.a")

    def test_cycle_without_sync_terminates(self):
        cg = graph(
            method("C", "a", invokes=["C.b"]),
            method("C", "b", invokes=["C.a"]),
        )
        assert not cg.may_reach_sync("C.a")
        assert not cg.may_reach_sync("C.b")

    def test_cycle_with_sync(self):
        cg = graph(
            method("C", "a", invokes=["C.b"]),
            method("C", "b", invokes=["C.a", "C.s"]),
            method("C", "s", sync=True),
        )
        assert cg.may_reach_sync("C.a")

    def test_unresolved_target_conservatively_negative(self):
        cg = graph(method("C", "a", invokes=["jdk.Lib.m"]))
        assert not cg.may_reach_sync("C.a")
        assert "jdk.Lib.m" in cg.unresolved_refs

    def test_memoization_consistent(self):
        cg = graph(
            method("C", "a", invokes=["C.b"]),
            method("C", "b", sync=True),
        )
        assert cg.may_reach_sync("C.a")
        assert cg.may_reach_sync("C.a")  # cached path
        assert cg.may_reach_sync("C.b")
