"""Application loader tests: hash caching, generations, statistics."""

from repro.appmodel.classfile import ClassFile, MethodBuilder
from repro.appmodel.loader import Application
from repro.core.signature import Frame


def simple_class(name, nested=False, loc=100):
    cls = ClassFile(name=name, source_loc=loc)
    mb = MethodBuilder(name, "work", first_line=10)
    mb.monitor_enter()
    if nested:
        mb.monitor_enter()
        mb.monitor_exit()
    mb.monitor_exit()
    cls.add_method(mb.build())
    return cls


class TestHashes:
    def test_hash_cached_and_stable(self):
        app = Application("app")
        app.load_class(simple_class("app.A"))
        first = app.bytecode_hash("app.A")
        assert first == app.bytecode_hash("app.A")

    def test_unknown_class_none(self):
        app = Application("app")
        assert app.bytecode_hash("ghost") is None

    def test_reload_invalidates_cache(self):
        app = Application("app")
        app.load_class(simple_class("app.A"))
        before = app.bytecode_hash("app.A")
        replacement = simple_class("app.A", nested=True)
        app.load_class(replacement)
        after = app.bytecode_hash("app.A")
        assert before != after

    def test_frame_hash_protocol(self):
        app = Application("app")
        app.load_class(simple_class("app.A"))
        frame = Frame("app.A", "work", 10, "whatever")
        assert app.frame_hash(frame) == app.bytecode_hash("app.A")

    def test_hash_index_covers_all(self):
        app = Application("app")
        app.load_class(simple_class("app.A"))
        app.load_class(simple_class("app.B"))
        index = app.hash_index()
        assert set(index) == {"app.A", "app.B"}


class TestGenerations:
    def test_generation_bumps_on_load(self):
        app = Application("app")
        g0 = app.generation
        app.load_class(simple_class("app.A"))
        assert app.generation == g0 + 1

    def test_nested_sites_recomputed_after_load(self):
        app = Application("app")
        app.load_class(simple_class("app.A", nested=True))
        first = app.nested_sync_sites()
        assert len(first) == 1
        app.load_class(simple_class("app.B", nested=True))
        second = app.nested_sync_sites()
        assert len(second) == 2


class TestStartup:
    def test_start_hashes_everything(self):
        app = Application("app")
        app.load_class(simple_class("app.A"))
        app.start()
        assert app.started
        app.shutdown()
        assert not app.started

    def test_loc_accounting(self):
        app = Application("app")
        app.load_class(simple_class("app.A", loc=70))
        app.load_class(simple_class("app.B", loc=30))
        assert app.loc == 100

    def test_declared_loc_wins(self):
        app = Application("app", loc=12345)
        app.load_class(simple_class("app.A", loc=1))
        assert app.loc == 12345


class TestStatistics:
    def test_statistics_row(self):
        app = Application("app")
        app.load_class(simple_class("app.A", nested=True, loc=50))
        app.load_class(simple_class("app.B", loc=50))
        stats = app.statistics()
        assert stats.name == "app"
        assert stats.loc == 100
        assert stats.sync_sites == 3  # nested pair + plain block
        assert stats.nested_sites == 1
        assert stats.analyzed_sites == 3
        assert stats.nesting_seconds >= 0.0
