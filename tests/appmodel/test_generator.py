"""Generator tests: presets must reproduce their Table I statistics."""

import pytest

from repro.appmodel.generator import PRESETS, AppSpec, generate_application


class TestScaledGeneration:
    @pytest.mark.parametrize("preset", ["jboss", "limewire", "vuze"])
    def test_scaled_statistics_match_spec(self, preset):
        spec = PRESETS[preset].scaled(0.05)
        app = generate_application(PRESETS[preset], scale=0.05)
        stats = app.statistics()
        assert stats.sync_sites == spec.sync_sites
        assert stats.analyzed_sites == spec.analyzed_sites
        assert stats.nested_sites == spec.nested_sites
        assert stats.loc == spec.loc
        # Explicit ops are packed 4 per method; count is rounded up.
        assert stats.explicit_sync_ops >= spec.explicit_ops
        assert stats.explicit_sync_ops < spec.explicit_ops + 4

    def test_deterministic_for_seed(self):
        a = generate_application(PRESETS["vuze"], scale=0.05)
        b = generate_application(PRESETS["vuze"], scale=0.05)
        assert a.hash_index() == b.hash_index()

    def test_different_presets_differ(self):
        a = generate_application(PRESETS["jboss"], scale=0.05)
        b = generate_application(PRESETS["limewire"], scale=0.05)
        assert set(a.hash_index()) != set(b.hash_index())


class TestSpecValidation:
    def test_nested_bound_enforced(self):
        bad = AppSpec(
            name="bad", loc=1000, sync_sites=10, explicit_ops=0,
            analyzed_sites=5, nested_sites=4, classes=4,
        )
        with pytest.raises(ValueError):
            generate_application(bad)

    def test_scaled_keeps_invariants(self):
        for preset in PRESETS.values():
            for scale in (0.02, 0.05, 0.2):
                spec = preset.scaled(scale)
                assert spec.analyzed_sites >= 2 * spec.nested_sites
                assert spec.sync_sites >= spec.analyzed_sites
                assert spec.nested_sites >= 1


class TestPresetTableI:
    """The full-scale presets carry exactly the paper's Table I targets."""

    @pytest.mark.parametrize(
        "name,loc,sync,explicit,analyzed,nested",
        [
            ("jboss", 636_895, 1_898, 104, 844, 249),
            ("limewire", 595_623, 1_435, 189, 781, 277),
            ("vuze", 476_702, 3_653, 14, 432, 120),
        ],
    )
    def test_preset_targets(self, name, loc, sync, explicit, analyzed, nested):
        spec = PRESETS[name]
        assert spec.loc == loc
        assert spec.sync_sites == sync
        assert spec.explicit_ops == explicit
        assert spec.analyzed_sites == analyzed
        assert spec.nested_sites == nested
