"""Signature factory tests: each factory targets one validation stage."""

from repro.appmodel import SignatureFactory
from repro.core.validation import ClientSideValidator, RejectReason


class TestFactoryShapes:
    def test_valid_has_requested_depth(self, shared_factory):
        sig = shared_factory.make_valid(depth=9)
        assert all(t.outer.depth == 9 for t in sig.threads)

    def test_valid_three_thread_signature(self, shared_factory):
        sig = shared_factory.make_valid(n_threads=3)
        assert len(sig.threads) == 3

    def test_batch_mixture(self, shared_app):
        factory = SignatureFactory(shared_app, seed=3)
        batch = factory.make_batch(60, valid_fraction=0.5)
        assert len(batch) == 60
        validator = ClientSideValidator(shared_app)
        verdicts = [validator.validate(sig).accepted for sig in batch]
        accepted = sum(verdicts)
        # Roughly the valid fraction should be accepted; allow slack for the
        # random mixture.
        assert 15 <= accepted <= 45

    def test_batch_deterministic_per_seed(self, shared_app):
        a = SignatureFactory(shared_app, seed=9).make_batch(10)
        b = SignatureFactory(shared_app, seed=9).make_batch(10)
        assert [s.sig_id for s in a] == [s.sig_id for s in b]

    def test_adjacent_pair_property(self, shared_factory):
        a, b = shared_factory.make_adjacent_pair()
        assert a.is_adjacent_to(b)

    def test_mergeable_pair_same_bug_different_ids(self, shared_factory):
        a, b = shared_factory.make_mergeable_pair()
        assert a.bug_key == b.bug_key
        assert a.sig_id != b.sig_id


class TestFactoryValidationTargets:
    def test_each_factory_hits_its_stage(self, shared_app, shared_factory):
        validator = ClientSideValidator(shared_app)
        assert validator.validate(shared_factory.make_valid()).accepted
        assert (
            validator.validate(shared_factory.make_bad_hash()).reason
            is RejectReason.HASH_MISMATCH
        )
        assert (
            validator.validate(shared_factory.make_shallow(2)).reason
            is RejectReason.TOO_SHALLOW
        )
        assert (
            validator.validate(shared_factory.make_non_nested()).reason
            is RejectReason.NOT_NESTED
        )
        assert (
            validator.validate(shared_factory.make_foreign()).reason
            is RejectReason.HASH_MISMATCH
        )
