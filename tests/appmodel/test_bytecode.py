"""Instruction-set and successor-computation tests."""

from repro.appmodel.bytecode import EXPLICIT_LOCK_TARGETS, Instruction, Opcode


class TestSuccessors:
    def test_straight_line(self):
        ins = Instruction(Opcode.NOP)
        assert ins.successors(0, 3) == (1,)

    def test_last_instruction_has_no_fallthrough(self):
        assert Instruction(Opcode.NOP).successors(2, 3) == ()

    def test_return_terminates(self):
        assert Instruction(Opcode.RETURN).successors(0, 5) == ()

    def test_throw_terminates(self):
        assert Instruction(Opcode.THROW).successors(0, 5) == ()

    def test_goto_single_target(self):
        assert Instruction(Opcode.GOTO, 4).successors(0, 6) == (4,)

    def test_if_branch_and_fallthrough(self):
        assert Instruction(Opcode.IF, 4).successors(1, 6) == (4, 2)

    def test_if_at_end_only_branch(self):
        assert Instruction(Opcode.IF, 0).successors(5, 6) == (0,)


class TestEncoding:
    def test_encode_with_operand(self):
        ins = Instruction(Opcode.INVOKE, "a.B.m", line=7)
        assert ins.encode() == "invoke(a.B.m)@7"

    def test_encode_without_operand(self):
        assert Instruction(Opcode.MONITORENTER, line=3).encode() == "monitorenter@3"

    def test_encoding_distinguishes_lines(self):
        a = Instruction(Opcode.NOP, line=1)
        b = Instruction(Opcode.NOP, line=2)
        assert a.encode() != b.encode()


class TestExplicitLockOps:
    def test_reentrant_lock_calls_flagged(self):
        for target in EXPLICIT_LOCK_TARGETS:
            assert Instruction(Opcode.INVOKE, target).is_explicit_lock_op

    def test_ordinary_invoke_not_flagged(self):
        assert not Instruction(Opcode.INVOKE, "app.C.m").is_explicit_lock_op

    def test_non_invoke_not_flagged(self):
        assert not Instruction(Opcode.MONITORENTER).is_explicit_lock_op
