"""Property-based tests for the sketch layer (Hypothesis).

Three properties the admission guard leans on:

* the (ε, δ) overestimate bound — a count-min estimate never undercounts
  and rarely overcounts by more than ε·N;
* wire-level merging is commutative and associative (federated workers
  pool sketches in whatever order snapshots arrive);
* the sliding window fully forgets a retired key within two windows.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.guard.sketch import (
    CountMinSketch,
    SlidingSketch,
    merge_sketch_wire,
)

#: Streams as (key, count) pairs; small alphabets force collisions.
_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=500),
              st.integers(min_value=1, max_value=20)),
    max_size=200,
)


def _fill(sketch, stream):
    truth: dict[int, int] = {}
    for key, count in stream:
        sketch.update(key, count)
        truth[key] = truth.get(key, 0) + count
    return truth


class TestEpsilonDeltaBound:
    @given(stream=_streams)
    @settings(max_examples=60, deadline=None)
    def test_never_underestimates(self, stream):
        sketch = CountMinSketch(width=16, depth=2)  # tiny: many collisions
        truth = _fill(sketch, stream)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_overestimate_bounded_by_epsilon_n(self, seed):
        # ~Zipf-ish stream of 3000 updates over 400 keys through an
        # (ε=0.05, δ=0.05) sketch: the fraction of keys whose estimate
        # exceeds truth + ε·N must stay around δ.  The bound is per-query
        # with probability 1-δ; conservative update only tightens it, so
        # allowing 2δ of the keys to breach keeps the test sharp without
        # flaking on an unlucky seed.
        epsilon, delta = 0.05, 0.05
        sketch = CountMinSketch.from_error(epsilon, delta)
        rng = random.Random(seed)
        truth: dict[int, int] = {}
        for _ in range(3000):
            key = min(rng.randrange(400), rng.randrange(400))
            truth[key] = truth.get(key, 0) + 1
            sketch.update(key)
        allowed = epsilon * sketch.total
        breaches = sum(
            1 for key, count in truth.items()
            if sketch.estimate(key) > count + allowed
        )
        assert breaches <= max(1, int(2 * delta * len(truth)))


class TestMergeAlgebra:
    @given(sa=_streams, sb=_streams)
    @settings(max_examples=40, deadline=None)
    def test_merge_commutative(self, sa, sb):
        a = CountMinSketch(16, 2)
        b = CountMinSketch(16, 2)
        _fill(a, sa)
        _fill(b, sb)
        ab = merge_sketch_wire(a.to_wire(), b.to_wire())
        ba = merge_sketch_wire(b.to_wire(), a.to_wire())
        assert ab == ba

    @given(sa=_streams, sb=_streams, sc=_streams)
    @settings(max_examples=40, deadline=None)
    def test_merge_associative(self, sa, sb, sc):
        sketches = []
        for stream in (sa, sb, sc):
            sketch = CountMinSketch(16, 2)
            _fill(sketch, stream)
            sketches.append(sketch.to_wire())
        a, b, c = sketches
        left = merge_sketch_wire(merge_sketch_wire(a, b), c)
        right = merge_sketch_wire(a, merge_sketch_wire(b, c))
        assert left == right

    @given(sa=_streams, sb=_streams,
           epoch_a=st.integers(min_value=0, max_value=4),
           epoch_b=st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_sliding_merge_commutative_across_epochs(
            self, sa, sb, epoch_a, epoch_b):
        window = 10.0
        a = SlidingSketch(16, 2, window_s=window)
        b = SlidingSketch(16, 2, window_s=window)
        for key, count in sa:
            a.update(key, count, now=epoch_a * window + 1.0)
        for key, count in sb:
            b.update(key, count, now=epoch_b * window + 1.0)
        ab = merge_sketch_wire(a.to_wire(), b.to_wire())
        ba = merge_sketch_wire(b.to_wire(), a.to_wire())
        assert ab == ba

    @given(stream=_streams)
    @settings(max_examples=40, deadline=None)
    def test_merged_estimate_covers_both_streams(self, stream):
        # Split one stream across two sketches; the merge must estimate
        # every key at least as high as the undivided truth.
        a = CountMinSketch(16, 2)
        b = CountMinSketch(16, 2)
        truth: dict[int, int] = {}
        for i, (key, count) in enumerate(stream):
            (a if i % 2 == 0 else b).update(key, count)
            truth[key] = truth.get(key, 0) + count
        merged = CountMinSketch.from_wire(
            merge_sketch_wire(a.to_wire(), b.to_wire()))
        for key, count in truth.items():
            assert merged.estimate(key) >= count


class TestDecayForgets:
    @given(stream=_streams,
           windows_later=st.integers(min_value=2, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_two_windows_forget_everything(self, stream, windows_later):
        window = 5.0
        sketch = SlidingSketch(16, 2, window_s=window)
        for key, count in stream:
            sketch.update(key, count, now=1.0)
        later = windows_later * window + 1.0
        for key, _ in stream:
            assert sketch.estimate(key, now=later) == 0
        assert sketch.total == 0

    @given(stream=_streams)
    @settings(max_examples=40, deadline=None)
    def test_one_window_still_remembers(self, stream):
        window = 5.0
        sketch = SlidingSketch(16, 2, window_s=window)
        truth: dict[int, int] = {}
        for key, count in stream:
            sketch.update(key, count, now=1.0)
            truth[key] = truth.get(key, 0) + count
        for key, count in truth.items():
            assert sketch.estimate(key, now=window + 1.0) >= count
