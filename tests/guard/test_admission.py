"""AdmissionGuard behavior under a manual clock (repro.guard.admission)."""

import pytest

from repro.guard import AdmissionGuard, GuardConfig
from repro.guard.admission import ABUSE_VERDICTS
from repro.guard.detector import FlowClass
from repro.util.clock import ManualClock


@pytest.fixture
def clock():
    return ManualClock(start=1_000_000.0)


def make_guard(clock, **overrides):
    defaults = dict(window_s=5.0, budget=64)
    defaults.update(overrides)
    return AdmissionGuard(GuardConfig(**defaults), clock=clock.now)


def flood(guard, clock, uid, per_round=400, rounds=3):
    """Offer `per_round` ADDs from one uid, then run a scoring round —
    repeated `rounds` times so the classification takes hold."""
    for r in range(rounds):
        for i in range(per_round):
            guard.admit_add(uid, f"sig-{uid}-{r}-{i}")
        clock.advance(guard.config.window_s)
        guard.force_score()


class TestBenignTraffic:
    def test_everything_admits_with_zero_shed(self, clock):
        guard = make_guard(clock)
        for round_no in range(4):
            for uid in range(30):
                assert guard.admit_add(uid, f"sig-{round_no}-{uid}")
            clock.advance(guard.config.window_s)
            guard.force_score()
        assert guard.shed_total() == 0
        assert guard.throttled.value() == 0
        assert guard.stats_payload()["admitted"] == 120

    def test_replica_fast_path_admits_benign(self, clock):
        guard = make_guard(clock)
        for uid in range(20):
            assert guard.admit_uid(uid)
        assert guard.shed_total() == 0


class TestFloodingUid:
    def test_flooder_is_shed_and_benign_unaffected(self, clock):
        guard = make_guard(clock)
        # A benign population establishes the baseline...
        for round_no in range(3):
            for uid in range(1, 25):
                guard.admit_add(uid, f"sig-{round_no}-{uid}")
            clock.advance(guard.config.window_s)
            guard.force_score()
        # ...then uid 999 blasts distinct signatures.
        flood(guard, clock, 999)
        assert guard.uid_dim.flow_class(999) is FlowClass.FLOODING
        assert not guard.admit_add(999, "sig-one-more")
        assert guard.shed_uid.value() > 0
        # Benign senders keep flowing while the flood is shed.
        for uid in range(1, 25):
            assert guard.admit_add(uid, f"sig-after-{uid}")

    def test_detection_persists_while_shedding(self, clock):
        guard = make_guard(clock)
        for round_no in range(3):  # benign baseline first
            for uid in range(1, 25):
                guard.admit_add(uid, f"sig-{round_no}-{uid}")
            clock.advance(guard.config.window_s)
            guard.force_score()
        flood(guard, clock, 999)
        assert guard.uid_dim.flow_class(999) is FlowClass.FLOODING
        # Keep offering at flood rate while classified: each shed still
        # lands in the sketch, so the next rounds keep seeing the rate.
        flood(guard, clock, 999, rounds=3)
        assert guard.uid_dim.flow_class(999) is FlowClass.FLOODING

    def test_flood_alone_self_normalizes_by_design(self, clock):
        # Relative mode needs a benign population to define "normal" —
        # a stream that is 100% one flooder seeds the median with its
        # own rate and never reaches the flooding ratio.  This is
        # exactly why the endpoint dimension runs in absolute mode on
        # abuse feedback instead.
        guard = make_guard(clock)
        flood(guard, clock, 999, rounds=6)
        assert guard.uid_dim.flow_class(999) is not FlowClass.FLOODING

    def test_relaxes_back_when_pressure_clears(self, clock):
        guard = make_guard(clock)
        for round_no in range(3):  # benign baseline first
            for uid in range(1, 25):
                guard.admit_add(uid, f"sig-{round_no}-{uid}")
            clock.advance(guard.config.window_s)
            guard.force_score()
        flood(guard, clock, 999)
        assert not guard.admit_add(999, "sig-x")
        # Silence: the sliding window forgets, calm rounds accrue, and
        # the class steps flooding -> suspect -> benign.
        for _ in range(8):
            clock.advance(guard.config.window_s)
            guard.force_score()
        assert guard.uid_dim.flow_class(999) is FlowClass.BENIGN
        assert guard.admit_add(999, "sig-back")


class TestSuspectThrottling:
    def test_suspect_gets_tightened_allowance(self, clock):
        guard = make_guard(clock)
        dim = guard.uid_dim
        # Force a suspect classification directly through the detector
        # (ratio tests live in test_detector; here we care about the
        # allowance mechanics).  force_score first so no lazy round
        # fires mid-test and swaps the injected map away.
        guard.force_score()
        dim.classes = {42: FlowClass.SUSPECT}
        admitted = sum(
            1 for i in range(dim.budget * 3)
            if guard.admit_add(42, f"sig-{i}")
        )
        assert admitted == dim.budget
        assert guard.throttled.value() == dim.budget * 2
        # A fresh window refills the allowance.
        clock.advance(guard.config.window_s)
        dim.classes = {42: FlowClass.SUSPECT}  # survive the score swap
        assert guard.admit_add(42, "sig-fresh")


class TestEndpointDimension:
    def test_rejections_past_budget_shed_the_endpoint(self, clock):
        guard = make_guard(clock)
        key = "10.0.0.9:4242"
        assert guard.endpoint_action(key) == "admit"
        for _ in range(guard.config.endpoint_budget * 2):
            guard.note_rejection(key, "quota_exceeded")
        clock.advance(guard.config.window_s)
        guard.force_score()
        assert guard.endpoint_action(key) == "shed"
        assert guard.shed_endpoint.value() == 1

    def test_store_error_never_marks_the_client(self, clock):
        guard = make_guard(clock)
        key = "10.0.0.9:4242"
        assert "store_error" not in ABUSE_VERDICTS
        for _ in range(guard.config.endpoint_budget * 4):
            guard.note_rejection(key, "store_error")
        clock.advance(guard.config.window_s)
        guard.force_score()
        assert guard.endpoint_action(key) == "admit"

    def test_accepted_traffic_never_feeds_the_endpoint_sketch(self, clock):
        guard = make_guard(clock)
        key = "10.0.0.9:4242"
        for _ in range(1000):
            guard.note_rejection(key, "ok")  # not a rejection verdict
        assert guard.endpoint_dim.sketch.total == 0

    def test_shed_feedback_keeps_the_flooder_classified(self, clock):
        guard = make_guard(clock)
        key = "10.0.0.9:4242"
        for _ in range(guard.config.endpoint_budget * 2):
            guard.note_rejection(key, "quota_exceeded")
        clock.advance(guard.config.window_s)
        guard.force_score()
        # While shed, the loop keeps reporting "shed" rejections; the
        # classification must hold round after round.
        for _ in range(4):
            for _ in range(guard.config.endpoint_budget * 2):
                guard.note_rejection(key, "shed")
            clock.advance(guard.config.window_s)
            guard.force_score()
        assert guard.endpoint_action(key) == "shed"


class TestLazyScoring:
    def test_rounds_fire_from_the_hot_path(self, clock):
        guard = make_guard(clock)
        guard.admit_add(1, "sig-a")
        rounds = guard.uid_dim.detector.rounds
        clock.advance(guard.config.window_s * 2)
        guard.admit_add(1, "sig-b")  # crosses the deadline: scores inline
        assert guard.uid_dim.detector.rounds == rounds + 1


class TestStatsAndMetrics:
    def test_stats_payload_shape(self, clock):
        guard = make_guard(clock)
        guard.admit_add(1, "sig-a")
        payload = guard.stats_payload()
        assert payload["budget"] == 64
        assert payload["admitted"] == 1
        assert set(payload["shed"]) == {"uid", "sig", "endpoint"}
        assert set(payload["dimensions"]) == {"uid", "sig", "endpoint"}
        for dim in payload["dimensions"].values():
            assert {"budget", "mode", "baseline", "suspect",
                    "flooding", "sketch_total"} <= set(dim)

    def test_register_metrics_exports_counters_and_sketches(self, clock):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        guard = make_guard(clock)
        guard.register_metrics(registry)
        guard.admit_add(7, "sig-a")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["guard.admitted"] == 1
        assert snapshot["counters"]["guard.shed"] == 0
        assert {"guard.uid", "guard.sig", "guard.endpoint"} <= set(
            snapshot["sketches"])
        assert snapshot["sketches"]["guard.uid"]["window_s"] == 5.0


class TestSnapshotMerging:
    def test_federated_sketch_pool(self, clock):
        from repro.obs import MetricsRegistry
        from repro.obs.export import merge_registry_snapshots

        registries = []
        for _ in range(2):
            registry = MetricsRegistry()
            guard = make_guard(clock)
            guard.register_metrics(registry)
            guard.admit_add(7, "sig-a")
            registries.append(registry)
        merged = merge_registry_snapshots(
            [r.snapshot() for r in registries])
        assert merged["counters"]["guard.admitted"] == 2
        from repro.guard.sketch import SlidingSketch

        pooled = SlidingSketch.from_wire(merged["sketches"]["guard.uid"])
        assert pooled.estimate(7, now=clock.now()) == 2

    def test_sketch_free_snapshots_merge_unchanged(self):
        from repro.obs import MetricsRegistry
        from repro.obs.export import merge_registry_snapshots

        registry = MetricsRegistry()
        registry.counter("x").add()
        merged = merge_registry_snapshots([registry.snapshot()])
        assert "sketches" not in merged
