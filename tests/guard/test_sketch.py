"""Unit tests for the guard's count-min machinery (repro.guard.sketch)."""

import random

import pytest

from repro.guard.sketch import (
    CountMinSketch,
    SlidingSketch,
    merge_cms_wire,
    merge_sketch_wire,
    merge_sliding_wire,
)


class TestCountMinSketch:
    def test_exact_on_sparse_stream(self):
        sketch = CountMinSketch.from_error(0.01, 0.02)
        for i in range(50):
            for _ in range(i + 1):
                sketch.update(f"key-{i}")
        for i in range(50):
            # 50 keys in a ~272-wide sketch: collisions are possible but
            # the estimate can never fall below the true count.
            assert sketch.estimate(f"key-{i}") >= i + 1
        assert sketch.total == sum(range(1, 51))

    def test_never_underestimates(self):
        rng = random.Random(7)
        sketch = CountMinSketch(width=32, depth=3)  # deliberately tiny
        truth: dict[int, int] = {}
        for _ in range(2000):
            key = rng.randrange(200)
            truth[key] = truth.get(key, 0) + 1
            sketch.update(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_unseen_key_can_read_zero_when_empty(self):
        sketch = CountMinSketch.from_error()
        assert sketch.estimate("never") == 0

    def test_update_returns_new_estimate(self):
        sketch = CountMinSketch.from_error()
        assert sketch.update("k") == 1
        assert sketch.update("k", 4) == 5

    def test_geometry_from_error(self):
        sketch = CountMinSketch.from_error(epsilon=0.01, delta=0.02)
        assert sketch.width == 272  # ceil(e / 0.01)
        assert sketch.depth == 4  # ceil(ln 50)

    def test_deterministic_across_instances(self):
        # Same seed => identical cells for an identical stream; this is
        # what makes sibling workers' sketches merge exactly.
        a = CountMinSketch(64, 4, seed=123)
        b = CountMinSketch(64, 4, seed=123)
        for i in range(100):
            a.update(i)
            b.update(i)
        assert a.rows == b.rows

    def test_merge_requires_matching_geometry(self):
        with pytest.raises(ValueError):
            CountMinSketch(64, 4).merge_from(CountMinSketch(32, 4))
        with pytest.raises(ValueError):
            CountMinSketch(64, 4, seed=1).merge_from(
                CountMinSketch(64, 4, seed=2))

    def test_merge_bounds_pooled_stream(self):
        a = CountMinSketch(64, 4)
        b = CountMinSketch(64, 4)
        for _ in range(10):
            a.update("x")
        for _ in range(7):
            b.update("x")
        b.update("y", 3)
        a.merge_from(b)
        assert a.estimate("x") >= 17
        assert a.estimate("y") >= 3
        assert a.total == 20

    def test_wire_roundtrip(self):
        sketch = CountMinSketch(16, 2, seed=9)
        sketch.update("k", 5)
        clone = CountMinSketch.from_wire(sketch.to_wire())
        assert clone.rows == sketch.rows
        assert clone.total == sketch.total
        assert clone.estimate("k") == 5


class TestSlidingSketch:
    def test_estimate_spans_two_windows(self):
        sketch = SlidingSketch(64, 4, window_s=10.0)
        sketch.update("k", 3, now=5.0)
        assert sketch.estimate("k", now=5.0) == 3
        # Next window: the count moved to `previous` but still estimates.
        sketch.update("k", 2, now=15.0)
        assert sketch.estimate("k", now=15.0) == 5

    def test_retired_key_forgotten_after_two_windows(self):
        sketch = SlidingSketch(64, 4, window_s=10.0)
        sketch.update("k", 100, now=5.0)
        assert sketch.estimate("k", now=15.0) == 100  # one window later
        assert sketch.estimate("k", now=25.0) == 0  # two windows later

    def test_long_gap_decays_everything(self):
        sketch = SlidingSketch(64, 4, window_s=10.0)
        sketch.update("k", 100, now=5.0)
        assert sketch.estimate("k", now=500.0) == 0
        assert sketch.total == 0

    def test_advance_is_idempotent(self):
        sketch = SlidingSketch(64, 4, window_s=10.0)
        sketch.update("k", 1, now=5.0)
        for _ in range(3):
            sketch.advance(5.0)
        assert sketch.estimate("k", now=5.0) == 1

    def test_wire_roundtrip(self):
        sketch = SlidingSketch(32, 3, window_s=2.0)
        sketch.update("a", 4, now=1.0)
        sketch.update("b", 1, now=3.0)
        clone = SlidingSketch.from_wire(sketch.to_wire())
        assert clone.epoch == sketch.epoch
        assert clone.estimate("a", now=3.0) == 4
        assert clone.estimate("b", now=3.0) == 1


class TestWireMerging:
    def test_cms_merge_is_sum(self):
        a = CountMinSketch(64, 4)
        b = CountMinSketch(64, 4)
        a.update("k", 2)
        b.update("k", 5)
        merged = CountMinSketch.from_wire(merge_cms_wire(a.to_wire(),
                                                         b.to_wire()))
        assert merged.estimate("k") == 7
        assert merged.total == 7

    def test_sliding_merge_same_epoch(self):
        a = SlidingSketch(64, 4, window_s=10.0)
        b = SlidingSketch(64, 4, window_s=10.0)
        a.update("k", 2, now=5.0)
        b.update("k", 3, now=6.0)
        merged = SlidingSketch.from_wire(
            merge_sliding_wire(a.to_wire(), b.to_wire()))
        assert merged.estimate("k", now=6.0) == 5

    def test_sliding_merge_aligns_older_epoch(self):
        a = SlidingSketch(64, 4, window_s=10.0)
        b = SlidingSketch(64, 4, window_s=10.0)
        a.update("k", 2, now=5.0)  # epoch 0
        b.update("k", 3, now=15.0)  # epoch 1
        merged = SlidingSketch.from_wire(
            merge_sliding_wire(a.to_wire(), b.to_wire()))
        # a's current rotates into previous when aligned to epoch 1 —
        # exactly what a.advance(15.0) would have produced.
        assert merged.epoch == 1
        assert merged.estimate("k", now=15.0) == 5
        # Two windows on, only b's epoch-1 count survives as previous.
        assert merged.estimate("k", now=25.0) == 3

    def test_sliding_merge_window_mismatch_raises(self):
        a = SlidingSketch(64, 4, window_s=10.0)
        b = SlidingSketch(64, 4, window_s=5.0)
        with pytest.raises(ValueError):
            merge_sliding_wire(a.to_wire(), b.to_wire())

    def test_dispatcher_picks_flavour(self):
        cms = CountMinSketch(16, 2)
        cms.update("k")
        sliding = SlidingSketch(16, 2, window_s=1.0)
        sliding.update("k", 1, now=0.5)
        assert "window_s" not in merge_sketch_wire(cms.to_wire(),
                                                   cms.to_wire())
        assert "window_s" in merge_sketch_wire(sliding.to_wire(),
                                               sliding.to_wire())
