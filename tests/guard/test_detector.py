"""Flow-classification tests (repro.guard.detector)."""

import pytest

from repro.guard.detector import FloodDetector, FlowClass


def _benign_rates(n=20, rate=4.0):
    return {f"benign-{i}": rate for i in range(n)}


class TestRelativeMode:
    def test_flooder_towers_over_benign_population(self):
        detector = FloodDetector(budget=16, mode="relative")
        rates = _benign_rates()
        rates["attacker"] = 200.0
        classes = detector.observe_round(rates)
        assert classes == {"attacker": FlowClass.FLOODING}

    def test_moderate_excess_is_suspect(self):
        detector = FloodDetector(budget=16, mode="relative")
        rates = _benign_rates()
        rates["pushy"] = 18.0  # >= budget/2 and >= 4x the median of 4.0
        classes = detector.observe_round(rates)
        assert classes == {"pushy": FlowClass.SUSPECT}

    def test_budget_floor_protects_quiet_systems(self):
        # One lonely key with a high ratio over an empty baseline must
        # not be flagged while its absolute rate is under budget/2.
        detector = FloodDetector(budget=64, mode="relative")
        assert detector.observe_round({"only": 10.0}) == {}

    def test_fleet_wide_lull_does_not_flag_ordinary_senders(self):
        detector = FloodDetector(budget=16, mode="relative")
        for _ in range(5):
            detector.observe_round(_benign_rates(rate=4.0))
        # Traffic collapses; the remaining senders keep their old rate.
        classes = detector.observe_round(_benign_rates(n=2, rate=4.0))
        assert classes == {}

    def test_baseline_tracks_median_not_attacker(self):
        detector = FloodDetector(budget=16, mode="relative")
        rates = _benign_rates(n=21, rate=4.0)
        rates["attacker"] = 10_000.0
        detector.observe_round(rates)
        # 21 benign keys vs 1 attacker: the median key is benign.
        assert detector.baseline <= 8.0


class TestAbsoluteMode:
    def test_budget_is_the_threshold(self):
        detector = FloodDetector(budget=8, mode="absolute")
        classes = detector.observe_round(
            {"a": 8.0, "b": 4.0, "c": 3.0})
        assert classes["a"] is FlowClass.FLOODING
        assert classes["b"] is FlowClass.SUSPECT
        assert "c" not in classes

    def test_population_of_abusers_cannot_self_normalize(self):
        # Every key is abusive: a relative median would score them all
        # ~1.0; absolute mode flags each against the budget.
        detector = FloodDetector(budget=8, mode="absolute")
        classes = detector.observe_round({f"bot-{i}": 50.0 for i in range(10)})
        assert all(c is FlowClass.FLOODING for c in classes.values())
        assert len(classes) == 10


class TestHysteresis:
    def test_upgrade_is_immediate(self):
        detector = FloodDetector(budget=8, mode="absolute")
        assert detector.observe_round({"k": 100.0})["k"] is FlowClass.FLOODING
        assert detector.upgrades == 1

    def test_downgrade_steps_one_level_per_calm_streak(self):
        detector = FloodDetector(budget=8, mode="absolute", calm_rounds=3)
        detector.observe_round({"k": 100.0})
        # Calm rounds 1-2: still flooding (hysteresis holds the class).
        for _ in range(2):
            assert detector.observe_round({"k": 0.0})["k"] is FlowClass.FLOODING
        # Calm round 3: steps down to suspect, not straight to benign.
        assert detector.observe_round({"k": 0.0})["k"] is FlowClass.SUSPECT
        for _ in range(2):
            assert detector.observe_round({"k": 0.0})["k"] is FlowClass.SUSPECT
        assert detector.observe_round({"k": 0.0}) == {}
        assert detector.downgrades == 2

    def test_relapse_resets_the_calm_streak(self):
        detector = FloodDetector(budget=8, mode="absolute", calm_rounds=2)
        detector.observe_round({"k": 100.0})
        detector.observe_round({"k": 0.0})  # calm 1
        detector.observe_round({"k": 100.0})  # relapse
        assert detector.observe_round({"k": 0.0})["k"] is FlowClass.FLOODING

    def test_class_counts(self):
        detector = FloodDetector(budget=8, mode="absolute")
        detector.observe_round({"a": 100.0, "b": 5.0})
        assert detector.class_counts() == {"suspect": 1, "flooding": 1}


class TestValidation:
    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            FloodDetector(budget=8, mode="psychic")

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            FloodDetector(budget=0)
