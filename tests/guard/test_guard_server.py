"""End-to-end: a guarded server over real sockets (transport + validator).

The flood here is a §III-C1 quota flood: one identity pushing distinct
valid-looking signatures.  The daily quota rejects them, the rejections
feed the guard's endpoint dimension, and the event loop starts shedding
the connection before parse/crypto — the full tentpole path.
"""

import itertools
import random
import socket
import time

import pytest

from repro.client.endpoints import SocketEndpoint
from repro.crypto.userid import UserIdAuthority
from repro.loadgen.signatures import off_path_flood_blobs
from repro.server.protocol import (
    encode_add_request,
    read_frame,
    write_frame,
)
from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.util.encoding import from_canonical_json


def make_guarded(clock=None, **config_overrides):
    defaults = dict(
        guard_enabled=True,
        guard_budget=16,
        guard_window_s=0.3,
        adjacency_check=False,
    )
    defaults.update(config_overrides)
    return CommunixServer(
        config=ServerConfig(**defaults),
        authority=UserIdAuthority(rng=random.Random(5)),
        clock=clock,
    )


@pytest.fixture
def guarded():
    server = make_guarded()
    transport = ServerTransport(server)
    host, port = transport.start()
    yield server, host, port
    transport.stop()


def raw_add(sock, blob, token):
    write_frame(sock, encode_add_request(blob, token))
    reply = read_frame(sock)
    assert reply is not None
    return from_canonical_json(reply)


class TestGuardConstruction:
    def test_disabled_by_default(self):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(5)))
        assert server.guard is None

    def test_enabled_by_config(self):
        server = make_guarded()
        assert server.guard is not None
        assert server.guard.config.budget == 16
        assert server.guard.config.window_s == 0.3

    def test_stats_v2_payload_has_guard_section(self, shared_factory):
        server = make_guarded()
        token = server.issue_user_token()
        server.process_add(shared_factory.make_valid().to_bytes(), token)
        payload = server.stats_payload(version=2)
        assert payload["guard"]["admitted"] == 1
        assert payload["guard"]["shed"] == {
            "uid": 0, "sig": 0, "endpoint": 0}


class TestBenignTrafficUnaffected:
    def test_clean_run_sheds_nothing(self, guarded, shared_factory):
        server, host, port = guarded
        endpoint = SocketEndpoint((host, port))
        try:
            tokens = [endpoint.issue_token() for _ in range(4)]
            accepted = 0
            for round_no in range(3):
                for token in tokens:
                    blob = shared_factory.make_valid().to_bytes()
                    if endpoint.add(blob, token):
                        accepted += 1
            assert accepted == 12
            stats = endpoint.stats(version=2)
            assert stats["guard"]["shed"] == {
                "uid": 0, "sig": 0, "endpoint": 0}
            assert stats["guard"]["throttled"] == 0
        finally:
            endpoint.close()


class TestQuotaFloodIsShed:
    def test_flooding_endpoint_hits_the_loop_shed(self, guarded):
        server, host, port = guarded
        issuer = SocketEndpoint((host, port))
        try:
            token = issuer.issue_token()
        finally:
            issuer.close()
        blobs = itertools.cycle(off_path_flood_blobs(400, seed=77))
        verdicts: dict[str, int] = {}
        with socket.create_connection((host, port), timeout=10.0) as sock:
            deadline = time.monotonic() + 15.0
            for blob in blobs:
                reply = raw_add(sock, blob, token)
                verdict = str(reply.get("verdict", "ok" if reply.get("ok")
                                        else "unknown"))
                verdicts[verdict] = verdicts.get(verdict, 0) + 1
                if verdicts.get("shed", 0) >= 5:
                    break
                assert time.monotonic() < deadline, (
                    f"no shed after {sum(verdicts.values())} adds: "
                    f"{verdicts}")
        # The quota rejected the early flood; the guard then classified
        # the endpoint and the event loop shed the rest pre-parse.
        assert verdicts.get("quota_exceeded", 0) > 0
        assert verdicts.get("shed", 0) >= 5
        guard = server.guard
        assert guard.shed_endpoint.value() > 0
        snapshot = server.metrics.snapshot()
        assert snapshot["counters"]["net.guard_loop_shed"] > 0

    def test_shed_responses_are_tarpitted(self, guarded):
        server, host, port = guarded
        issuer = SocketEndpoint((host, port))
        try:
            token = issuer.issue_token()
        finally:
            issuer.close()
        blobs = itertools.cycle(off_path_flood_blobs(400, seed=78))
        tarpit = server.guard.config.tarpit_s
        with socket.create_connection((host, port), timeout=10.0) as sock:
            shed_gaps = []
            deadline = time.monotonic() + 15.0
            for blob in blobs:
                started = time.monotonic()
                reply = raw_add(sock, blob, token)
                if reply.get("verdict") == "shed":
                    shed_gaps.append(time.monotonic() - started)
                    if len(shed_gaps) >= 5:
                        break
                if time.monotonic() > deadline:
                    pytest.fail("flood was never shed")
        # Every shed response waited out the tarpit delay, so a
        # closed-loop flooder is throttled to ~1/tarpit_s req/s.
        assert min(shed_gaps) >= tarpit * 0.5


class TestUnixEndpointKeys:
    def test_unix_connections_get_distinct_keys(self, tmp_path):
        server = make_guarded()
        transport = ServerTransport(server,
                                    endpoints=[f"unix://{tmp_path}/g.sock"])
        transport.start()
        try:
            a = SocketEndpoint(f"unix://{tmp_path}/g.sock")
            b = SocketEndpoint(f"unix://{tmp_path}/g.sock")
            try:
                a.issue_token()
                b.issue_token()
                keys = {conn.endpoint_key
                        for conn in transport._conns.values()
                        if conn.endpoint_key is not None}
                assert len(keys) == 2
            finally:
                a.close()
                b.close()
        finally:
            transport.stop()
