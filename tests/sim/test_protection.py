"""Time-to-full-protection model tests (§IV-C)."""

import pytest

from repro.sim.protection import (
    ProtectionParams,
    analytic_estimate,
    mean_protection_times,
    simulate_protection,
)


class TestAnalyticEstimate:
    def test_paper_formulas(self):
        params = ProtectionParams(n_users=100, n_manifestations=10,
                                  mean_days_per_manifestation=2.0)
        dimmunix, communix = analytic_estimate(params)
        assert dimmunix == pytest.approx(20.0)
        assert communix == pytest.approx(0.2)

    def test_single_user_no_gain(self):
        params = ProtectionParams(n_users=1, n_manifestations=5)
        dimmunix, communix = analytic_estimate(params)
        assert dimmunix == communix * 1  # t*Nd == t*Nd/1


class TestSimulation:
    def test_communix_never_slower_than_users(self):
        params = ProtectionParams(n_users=10, n_manifestations=8, seed=3)
        outcome = simulate_protection(params)
        # Union coverage happens no later than any single user's coverage
        # (minus distribution latency).
        assert (
            outcome.communix_days - params.distribution_latency_days
            <= outcome.dimmunix_alone_worst_days
        )

    def test_single_user_equivalence(self):
        params = ProtectionParams(n_users=1, n_manifestations=6, seed=5,
                                  distribution_latency_days=0.0)
        outcome = simulate_protection(params)
        assert outcome.communix_days == pytest.approx(outcome.dimmunix_alone_days)

    def test_more_users_faster_protection(self):
        slow = mean_protection_times(
            ProtectionParams(n_users=1, n_manifestations=10, seed=1), runs=5
        )
        fast = mean_protection_times(
            ProtectionParams(n_users=50, n_manifestations=10, seed=1), runs=5
        )
        assert fast[1] < slow[1]

    def test_inverse_scaling_shape(self):
        """The paper's 1/Nu claim: tenfold users => roughly tenfold faster
        (allow generous tolerance; the union-coverage process is coupon-
        collector-ish, not exactly linear)."""
        ten = mean_protection_times(
            ProtectionParams(n_users=10, n_manifestations=20, seed=2,
                             distribution_latency_days=0.0), runs=8
        )[1]
        hundred = mean_protection_times(
            ProtectionParams(n_users=100, n_manifestations=20, seed=2,
                             distribution_latency_days=0.0), runs=8
        )[1]
        ratio = ten / hundred
        assert 4.0 <= ratio <= 25.0

    def test_deterministic_per_seed(self):
        params = ProtectionParams(n_users=5, n_manifestations=5, seed=11)
        a = simulate_protection(params)
        b = simulate_protection(params)
        assert a.communix_days == b.communix_days
        assert a.dimmunix_alone_days == b.dimmunix_alone_days

    def test_event_accounting(self):
        outcome = simulate_protection(
            ProtectionParams(n_users=3, n_manifestations=4, seed=7)
        )
        # Every user must see every manifestation: at least Nd draws each.
        assert outcome.events_simulated >= 3 * 4

    def test_distribution_latency_added(self):
        base = ProtectionParams(n_users=5, n_manifestations=5, seed=9,
                                distribution_latency_days=0.0)
        delayed = ProtectionParams(n_users=5, n_manifestations=5, seed=9,
                                   distribution_latency_days=1.0)
        assert (
            simulate_protection(delayed).communix_days
            == pytest.approx(simulate_protection(base).communix_days + 1.0)
        )
