"""Attack-forging tests (§IV-B) and DoS containment at validation time."""

import pytest

from repro.core.validation import ClientSideValidator, RejectReason
from repro.dimmunix.runtime import DimmunixRuntime
from repro.sim.apps import APP_WORKLOADS, AppWorkload, dimmunix_lock_factory
from repro.sim.attack import forge_critical_path_signatures, forge_off_path_signatures
from tests.conftest import make_fast_config


@pytest.fixture
def samples():
    config = make_fast_config(record_acquisition_stacks=True)
    runtime = DimmunixRuntime(config=config)
    spec = APP_WORKLOADS["jboss_rubis"].scaled(0.05)
    workload = AppWorkload(spec, dimmunix_lock_factory(runtime))
    stacks = workload.sample_stacks(runtime, ops=300)
    runtime.stop()
    return stacks


class TestCriticalPathForging:
    def test_forges_requested_count(self, samples):
        sigs = forge_critical_path_signatures(samples, count=10, depth=5)
        assert 1 <= len(sigs) <= 10
        for sig in sigs:
            assert all(t.outer.depth <= 5 for t in sig.threads)

    def test_deeper_suffixes_available(self, samples):
        sigs = forge_critical_path_signatures(samples, count=5, depth=3)
        assert all(t.outer.depth <= 3 for s in sigs for t in s.threads)

    def test_signatures_reference_real_code(self, samples):
        sigs = forge_critical_path_signatures(samples, count=5, depth=5)
        for sig in sigs:
            for t in sig.threads:
                assert t.outer.top.class_name == "repro.sim.apps"

    def test_needs_at_least_two_samples(self):
        with pytest.raises(ValueError):
            forge_critical_path_signatures([], count=5)

    def test_deterministic_for_seed(self, samples):
        a = forge_critical_path_signatures(samples, count=8, seed=3)
        b = forge_critical_path_signatures(samples, count=8, seed=3)
        assert [s.sig_id for s in a] == [s.sig_id for s in b]


class TestOffPathForging:
    def test_off_path_signatures_never_match_app(self):
        sigs = forge_off_path_signatures(count=10)
        assert len(sigs) == 10
        for sig in sigs:
            assert all(
                f.class_name == "ghost.module" for t in sig.threads for f in t.outer
            )


class TestValidationContainsShallowAttacks:
    """§III-C1: the agent refuses outer call stacks of depth < 5, which is
    what blocks the '>100% overhead' depth-1 attack."""

    def test_depth_one_attack_rejected_by_agent(self, shared_app, samples):
        validator = ClientSideValidator(shared_app)
        shallow = forge_critical_path_signatures(samples, count=5, depth=1)
        for sig in shallow:
            result = validator.validate(sig)
            assert not result.accepted
            # These stacks reference the workload module, not the app model,
            # so they fail the hash check first; depth-1 sigs against the
            # right app fail TOO_SHALLOW (covered in validation tests).
            assert result.reason in (
                RejectReason.HASH_MISMATCH,
                RejectReason.TOO_SHALLOW,
            )

    def test_nested_block_bound_caps_acceptance(self, shared_app, shared_factory):
        """'An attacker cannot provide more than N signatures that get
        accepted' where N = number of nested sync blocks: every accepted
        signature's outer tops must be nested sites."""
        validator = ClientSideValidator(shared_app)
        nested = shared_app.nested_sync_sites()
        for _ in range(20):
            sig = shared_factory.make_valid()
            result = validator.validate(sig)
            assert result.accepted
            for t in result.signature.threads:
                assert t.outer.top.location in nested
