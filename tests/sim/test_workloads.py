"""Workload program tests (beyond the detection tests that reuse them)."""

import pytest

from repro.sim.workloads import DiningPhilosophers, TwoLockProgram


class TestTwoLockProgram:
    def test_non_colliding_run_completes(self, runtime):
        program = TwoLockProgram(runtime, "w1")
        result = program.run_once(collide=False)
        assert not result.deadlocked
        assert sorted(result.completed) == ["t1", "t2"]

    def test_collide_produces_deadlock(self, runtime):
        program = TwoLockProgram(runtime, "w2")
        result = program.run_once(collide=True)
        assert result.deadlocked

    def test_acquisition_stacks_deep_enough_for_validation(self, runtime):
        # The distributed-validation depth floor is 5; local captures must
        # leave at least 5 hashable application frames after trimming.
        program = TwoLockProgram(runtime, "w3")
        program.run_once(collide=True)
        sig = runtime.history.snapshot()[0]
        for thread in sig.threads:
            app_frames = [
                f for f in thread.outer
                if f.class_name.startswith("repro.sim.workloads")
            ]
            assert len(app_frames) >= 5


class TestDiningPhilosophers:
    def test_requires_two_seats(self, runtime):
        with pytest.raises(ValueError):
            DiningPhilosophers(runtime, seats=1)

    def test_non_colliding_run_completes(self, runtime):
        table = DiningPhilosophers(runtime, seats=3)
        result = table.run_once(collide=False)
        assert not result.deadlocked
        assert len(result.completed) == 3

    def test_five_seats_supported(self, runtime):
        table = DiningPhilosophers(runtime, seats=5)
        result = table.run_once(collide=False)
        assert len(result.completed) == 5
