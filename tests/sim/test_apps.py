"""Application-workload tests (the Table II substrate)."""

import threading

from repro.dimmunix.runtime import DimmunixRuntime
from repro.sim.apps import APP_WORKLOADS, AppWorkload, dimmunix_lock_factory
from tests.conftest import make_fast_config


def tiny(spec):
    return spec.scaled(0.05)


class TestVanillaRuns:
    def test_all_presets_run_clean(self):
        for spec in APP_WORKLOADS.values():
            elapsed = AppWorkload(tiny(spec)).run()
            assert elapsed > 0

    def test_scaling_preserves_shape(self):
        spec = APP_WORKLOADS["jboss_rubis"]
        scaled = spec.scaled(0.1)
        assert scaled.threads == spec.threads
        assert scaled.resources == spec.resources
        assert scaled.ops_per_thread < spec.ops_per_thread


class TestImmunizedRuns:
    def test_runs_with_dimmunix_locks(self):
        runtime = DimmunixRuntime(config=make_fast_config())
        runtime.start()
        try:
            spec = tiny(APP_WORKLOADS["vuze"])
            workload = AppWorkload(spec, dimmunix_lock_factory(runtime))
            workload.run()
            expected = spec.threads * spec.ops_per_thread * 2  # outer+inner
            assert runtime.stats.acquisitions == expected
            assert runtime.stats.deadlocks_detected == 0
        finally:
            runtime.stop()

    def test_nested_sites_discovered(self):
        runtime = DimmunixRuntime(config=make_fast_config())
        runtime.start()
        try:
            spec = tiny(APP_WORKLOADS["eclipse"])
            AppWorkload(spec, dimmunix_lock_factory(runtime)).run()
            # Every op acquires inner while holding outer: the (single)
            # outer acquisition site is a nested site.
            assert len(runtime.nested_sites) >= 1
        finally:
            runtime.stop()


class TestStackSampling:
    def test_samples_cover_paths(self):
        config = make_fast_config(record_acquisition_stacks=True)
        runtime = DimmunixRuntime(config=config)
        try:
            spec = tiny(APP_WORKLOADS["jboss_rubis"])
            workload = AppWorkload(spec, dimmunix_lock_factory(runtime))
            samples = workload.sample_stacks(runtime, ops=300)
            # Distinct call paths yield distinct depth-5 suffixes; with 6
            # paths and outer+inner sites we expect a healthy sample pool.
            assert len(samples) >= spec.paths
        finally:
            runtime.stop()
