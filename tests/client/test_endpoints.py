"""Endpoint tests (in-process; TCP endpoints are covered in server tests)."""

import random

import pytest

from repro.client.endpoints import InProcessEndpoint
from repro.core.signature import DeadlockSignature
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer
from repro.util.clock import ManualClock


@pytest.fixture
def endpoint():
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(3)),
        clock=ManualClock(start=1_000_000.0),
    )
    return InProcessEndpoint(server), server


class TestInProcessEndpoint:
    def test_issue_token_valid(self, endpoint):
        ep, server = endpoint
        token = ep.issue_token()
        assert server.authority.decode(token).user_id >= 1

    def test_add_get_round_trip(self, endpoint, shared_factory):
        ep, server = endpoint
        token = ep.issue_token()
        sig = shared_factory.make_valid()
        assert ep.add(sig.to_bytes(), token) is True
        next_index, blobs = ep.get(0)
        assert next_index == 1
        assert DeadlockSignature.from_bytes(blobs[0]).sig_id == sig.sig_id

    def test_add_rejection_returns_false(self, endpoint, shared_factory):
        ep, _ = endpoint
        sig = shared_factory.make_valid()
        assert ep.add(sig.to_bytes(), "not-a-token") is False

    def test_incremental_get(self, endpoint, shared_factory):
        ep, _ = endpoint
        for _ in range(3):
            ep.add(shared_factory.make_valid().to_bytes(), ep.issue_token())
        next_index, blobs = ep.get(1)
        assert next_index == 3
        assert len(blobs) == 2
