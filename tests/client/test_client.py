"""Communix client tests: incremental daily downloads (§III-B)."""

import random
import time

import pytest

from repro.client.client import CommunixClient
from repro.client.endpoints import InProcessEndpoint
from repro.core.repository import LocalRepository
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer
from repro.util.clock import ManualClock


@pytest.fixture
def deployment(manual_clock):
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(9)), clock=manual_clock
    )
    endpoint = InProcessEndpoint(server)
    repo = LocalRepository()
    client = CommunixClient(
        endpoint=endpoint, repository=repo, clock=manual_clock, period=86_400.0
    )
    return server, endpoint, repo, client


def upload(server, factory, n):
    sigs = []
    for _ in range(n):
        token = server.issue_user_token()
        sig = factory.make_valid()
        assert server.process_add(sig.to_bytes(), token).accepted
        sigs.append(sig)
    return sigs


class TestPollOnce:
    def test_initial_full_download(self, deployment, shared_factory):
        server, _, repo, client = deployment
        upload(server, shared_factory, 3)
        report = client.poll_once()
        assert report.received == 3
        assert report.stored == 3
        assert len(repo) == 3
        assert repo.server_index == 3

    def test_incremental_second_poll(self, deployment, shared_factory):
        server, _, repo, client = deployment
        upload(server, shared_factory, 2)
        client.poll_once()
        upload(server, shared_factory, 2)
        report = client.poll_once()
        assert report.requested_from == 2
        assert report.received == 2  # only the new ones travel
        assert len(repo) == 4

    def test_no_news_empty_download(self, deployment, shared_factory):
        server, _, repo, client = deployment
        upload(server, shared_factory, 1)
        client.poll_once()
        report = client.poll_once()
        assert report.received == 0
        assert report.stored == 0

    def test_malformed_blob_skipped(self, deployment, shared_factory):
        server, endpoint, repo, client = deployment

        class HostileEndpoint:
            def get(self, from_index):
                return 2, [b"not a signature", shared_factory.make_valid().to_bytes()]

        hostile_client = CommunixClient(
            endpoint=HostileEndpoint(), repository=repo,
            clock=client.clock, period=86_400.0,
        )
        report = hostile_client.poll_once()
        assert report.malformed == 1
        assert report.stored == 1

    def test_endpoint_failure_reported_not_raised(self, deployment):
        _, _, repo, client = deployment

        class DeadEndpoint:
            def get(self, from_index):
                from repro.util.errors import ProtocolError

                raise ProtocolError("gone")

        failing = CommunixClient(
            endpoint=DeadEndpoint(), repository=repo, clock=client.clock
        )
        report = failing.poll_once()
        assert report.failed
        assert "gone" in report.error
        assert len(repo) == 0


class TestPaginatedDownload:
    def test_cold_download_pages_until_drained(self, deployment, shared_factory):
        server, endpoint, repo, client = deployment
        client.page_size = 2
        sigs = upload(server, shared_factory, 7)
        report = client.poll_once()
        assert report.pages == 4  # 2+2+2+1
        assert report.received == 7
        assert report.stored == 7
        assert repo.server_index == 7
        assert [repo.signature_at(i).sig_id for i in range(7)] == [
            s.sig_id for s in sigs
        ]

    def test_resume_mid_stream_every_signature_exactly_once(
            self, deployment, shared_factory):
        """A client whose download dies mid-stream resumes from the page
        boundary and ends with every signature exactly once."""
        server, endpoint, repo, client = deployment
        upload(server, shared_factory, 6)

        class FlakyEndpoint:
            """Delivers one page, then dies; recovers on the next poll."""

            def __init__(self, inner):
                self.inner = inner
                self.pages_served = 0
                self.fail_after = 1

            def get_page(self, from_index, max_count):
                from repro.util.errors import ProtocolError

                if self.pages_served >= self.fail_after:
                    raise ProtocolError("connection lost mid-stream")
                self.pages_served += 1
                return self.inner.get_page(from_index, max_count)

        flaky = FlakyEndpoint(endpoint)
        client.endpoint = flaky
        client.page_size = 2
        first = client.poll_once()
        assert first.failed
        assert first.received == 2  # one page landed before the failure
        assert repo.server_index == 2  # progress survived the failure
        flaky.fail_after = 1_000
        second = client.poll_once()
        assert second.requested_from == 2
        assert not second.failed
        assert len(repo) == 6
        ids = [repo.signature_at(i).sig_id for i in range(len(repo))]
        assert len(set(ids)) == 6  # exactly once: no duplicates, no gaps
        assert repo.server_index == 6

    def test_adds_between_pages_are_picked_up(self, deployment, shared_factory):
        """Signatures appended while a paginated download is in flight are
        served before the stream reports 'drained'."""
        server, endpoint, repo, client = deployment
        upload(server, shared_factory, 3)

        class TrickleEndpoint:
            def __init__(self, inner, server_, factory):
                self.inner = inner
                self.server = server_
                self.factory = factory
                self.injected = False

            def get_page(self, from_index, max_count):
                page = self.inner.get_page(from_index, max_count)
                if not self.injected:
                    self.injected = True
                    upload(self.server, self.factory, 2)
                return page

        client.endpoint = TrickleEndpoint(endpoint, server, shared_factory)
        client.page_size = 2
        report = client.poll_once()
        assert report.received == 5
        assert len(repo) == 5
        assert repo.server_index == 5

    def test_legacy_endpoint_without_get_page_still_works(
            self, deployment, shared_factory):
        server, endpoint, repo, client = deployment
        upload(server, shared_factory, 4)

        class LegacyEndpoint:
            def get(self, from_index):
                return endpoint.get(from_index)

        legacy_client = CommunixClient(
            endpoint=LegacyEndpoint(), repository=repo,
            clock=client.clock, period=86_400.0,
        )
        report = legacy_client.poll_once()
        assert report.received == 4
        assert report.pages == 1
        assert len(repo) == 4


class TestBackgroundDaemon:
    def _wait_for(self, predicate, timeout=3.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.02)
        return predicate()

    def test_periodic_download_on_manual_clock(self, deployment, shared_factory):
        server, _, repo, client = deployment
        upload(server, shared_factory, 1)
        client.start()
        try:
            assert self._wait_for(lambda: len(repo) == 1)
            upload(server, shared_factory, 1)
            # Within the same "day" nothing new is fetched...
            time.sleep(0.1)
            assert len(repo) == 1
            # ...but advancing a day triggers the next incremental poll.
            client.clock.advance(86_400.0)
            assert self._wait_for(lambda: len(repo) == 2)
        finally:
            client.stop()

    def test_start_idempotent_and_stop(self, deployment):
        _, _, _, client = deployment
        client.start()
        client.start()
        client.stop()
        client.stop()
