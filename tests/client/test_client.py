"""Communix client tests: incremental daily downloads (§III-B)."""

import random
import time

import pytest

from repro.client.client import CommunixClient
from repro.client.endpoints import InProcessEndpoint
from repro.core.repository import LocalRepository
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer
from repro.util.clock import ManualClock


@pytest.fixture
def deployment(manual_clock):
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(9)), clock=manual_clock
    )
    endpoint = InProcessEndpoint(server)
    repo = LocalRepository()
    client = CommunixClient(
        endpoint=endpoint, repository=repo, clock=manual_clock, period=86_400.0
    )
    return server, endpoint, repo, client


def upload(server, factory, n):
    sigs = []
    for _ in range(n):
        token = server.issue_user_token()
        sig = factory.make_valid()
        assert server.process_add(sig.to_bytes(), token).accepted
        sigs.append(sig)
    return sigs


class TestPollOnce:
    def test_initial_full_download(self, deployment, shared_factory):
        server, _, repo, client = deployment
        upload(server, shared_factory, 3)
        report = client.poll_once()
        assert report.received == 3
        assert report.stored == 3
        assert len(repo) == 3
        assert repo.server_index == 3

    def test_incremental_second_poll(self, deployment, shared_factory):
        server, _, repo, client = deployment
        upload(server, shared_factory, 2)
        client.poll_once()
        upload(server, shared_factory, 2)
        report = client.poll_once()
        assert report.requested_from == 2
        assert report.received == 2  # only the new ones travel
        assert len(repo) == 4

    def test_no_news_empty_download(self, deployment, shared_factory):
        server, _, repo, client = deployment
        upload(server, shared_factory, 1)
        client.poll_once()
        report = client.poll_once()
        assert report.received == 0
        assert report.stored == 0

    def test_malformed_blob_skipped(self, deployment, shared_factory):
        server, endpoint, repo, client = deployment

        class HostileEndpoint:
            def get(self, from_index):
                return 2, [b"not a signature", shared_factory.make_valid().to_bytes()]

        hostile_client = CommunixClient(
            endpoint=HostileEndpoint(), repository=repo,
            clock=client.clock, period=86_400.0,
        )
        report = hostile_client.poll_once()
        assert report.malformed == 1
        assert report.stored == 1

    def test_endpoint_failure_reported_not_raised(self, deployment):
        _, _, repo, client = deployment

        class DeadEndpoint:
            def get(self, from_index):
                from repro.util.errors import ProtocolError

                raise ProtocolError("gone")

        failing = CommunixClient(
            endpoint=DeadEndpoint(), repository=repo, clock=client.clock
        )
        report = failing.poll_once()
        assert report.failed
        assert "gone" in report.error
        assert len(repo) == 0


class TestBackgroundDaemon:
    def _wait_for(self, predicate, timeout=3.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.02)
        return predicate()

    def test_periodic_download_on_manual_clock(self, deployment, shared_factory):
        server, _, repo, client = deployment
        upload(server, shared_factory, 1)
        client.start()
        try:
            assert self._wait_for(lambda: len(repo) == 1)
            upload(server, shared_factory, 1)
            # Within the same "day" nothing new is fetched...
            time.sleep(0.1)
            assert len(repo) == 1
            # ...but advancing a day triggers the next incremental poll.
            client.clock.advance(86_400.0)
            assert self._wait_for(lambda: len(repo) == 2)
        finally:
            client.stop()

    def test_start_idempotent_and_stop(self, deployment):
        _, _, _, client = deployment
        client.start()
        client.start()
        client.stop()
        client.stop()
