"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.appmodel import PRESETS, SignatureFactory, generate_application
from repro.dimmunix import DimmunixConfig, DimmunixRuntime
from repro.util.clock import ManualClock


def make_fast_config(**overrides) -> DimmunixConfig:
    """Dimmunix config with intervals shrunk for snappy threaded tests."""
    defaults = dict(
        detection_interval=0.02,
        acquire_poll_interval=0.01,
        avoidance_recheck_interval=0.005,
    )
    defaults.update(overrides)
    return DimmunixConfig(**defaults)


@pytest.fixture
def fast_config() -> DimmunixConfig:
    return make_fast_config()


@pytest.fixture
def runtime(fast_config):
    rt = DimmunixRuntime(config=fast_config)
    rt.start()
    yield rt
    rt.stop()


@pytest.fixture
def manual_clock() -> ManualClock:
    # Start well inside a "day" so quota-day boundaries are predictable.
    return ManualClock(start=1_000_000.0)


@pytest.fixture(scope="session")
def shared_app():
    """A small JBoss-like app model, shared read-only across tests."""
    return generate_application(PRESETS["jboss"], scale=0.05)


@pytest.fixture(scope="session")
def shared_factory(shared_app) -> SignatureFactory:
    return SignatureFactory(shared_app, seed=42)


@pytest.fixture
def fresh_app():
    """A function-scoped app model for tests that mutate it."""
    return generate_application(PRESETS["limewire"], scale=0.05)
