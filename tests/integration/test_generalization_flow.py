"""Integration: generalization across the community (§III-D).

Different users experience different *manifestations* of the same deadlock
bug; the agent merges them into one compact signature whose stacks are the
longest common suffixes — "the role of signature generalization is to keep
few signatures per deadlock bug".
"""

import random

import pytest

from repro.appmodel import SignatureFactory
from repro.client.client import CommunixClient
from repro.client.endpoints import InProcessEndpoint
from repro.core.agent import CommunixAgent
from repro.core.history import DeadlockHistory
from repro.core.repository import LocalRepository
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer
from repro.util.clock import ManualClock


@pytest.fixture
def world(fresh_app, manual_clock):
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(41)), clock=manual_clock
    )
    endpoint = InProcessEndpoint(server)
    repo = LocalRepository()
    client = CommunixClient(endpoint=endpoint, repository=repo,
                            clock=manual_clock)
    history = DeadlockHistory()
    agent = CommunixAgent(fresh_app, history, repo)
    factory = SignatureFactory(fresh_app, seed=8)
    return server, client, repo, history, agent, factory


class TestCommunityGeneralization:
    def test_manifestations_from_different_users_merge(self, world):
        server, client, repo, history, agent, factory = world
        a, b = factory.make_mergeable_pair(depth_a=11, depth_b=9, common=6)
        # Two different users report the two manifestations.
        for sig in (a, b):
            token = server.issue_user_token()
            assert server.process_add(sig.to_bytes(), token).accepted
        client.poll_once()
        report = agent.on_application_start()
        assert report.accepted == 2
        assert len(history) == 1  # one compact signature per bug
        merged = history.snapshot()[0]
        assert all(t.outer.depth == 6 for t in merged.threads)
        # The generalized signature still matches both manifestations.
        for original in (a, b):
            for mt, ot in zip(
                sorted(merged.threads, key=lambda t: t.bug_key),
                sorted(original.threads, key=lambda t: t.bug_key),
            ):
                assert mt.outer.matches(ot.outer)

    def test_incremental_merge_across_days(self, world):
        server, client, repo, history, agent, factory = world
        a, b = factory.make_mergeable_pair(depth_a=12, depth_b=10, common=7)
        server.process_add(a.to_bytes(), server.issue_user_token())
        client.poll_once()
        agent.on_application_start()
        assert len(history) == 1
        first = history.snapshot()[0]
        assert all(t.outer.depth == 12 for t in first.threads)

        # Day 2: the second manifestation arrives and generalizes day 1's.
        server.process_add(b.to_bytes(), server.issue_user_token())
        client.clock.advance(86_400.0)
        client.poll_once()
        report = agent.on_application_start()
        assert report.merged == 1
        assert len(history) == 1
        assert all(t.outer.depth == 7 for t in history.snapshot()[0].threads)

    def test_distinct_bugs_do_not_merge(self, world):
        server, client, repo, history, agent, factory = world
        for _ in range(3):
            sig = factory.make_valid()
            server.process_add(sig.to_bytes(), server.issue_user_token())
        client.poll_once()
        agent.on_application_start()
        keys = {s.bug_key for s in history.snapshot()}
        assert len(keys) == len(history)  # one entry per distinct bug
