"""End-to-end: event-driven transport + paginated client downloads.

The full paper pipeline over real sockets — signatures uploaded to the
server, a CommunixClient streaming them down in bounded pages into its
local repository — including ADDs racing the paginated download.
"""

import random
import threading

import pytest

from repro.client.client import CommunixClient
from repro.client.endpoints import TcpEndpoint
from repro.core.repository import LocalRepository
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer, ServerConfig
from repro.server.transport import ServerTransport
from repro.util.clock import ManualClock


@pytest.fixture
def stack():
    server = CommunixServer(
        authority=UserIdAuthority(rng=random.Random(31)),
        clock=ManualClock(start=1_000_000.0),
        config=ServerConfig(max_get_page=8),
    )
    transport = ServerTransport(server)
    host, port = transport.start()
    endpoint = TcpEndpoint(host, port)
    yield server, endpoint
    endpoint.close()
    transport.stop()


def upload(server, factory, n):
    for _ in range(n):
        sig = factory.make_valid()
        assert server.process_add(
            sig.to_bytes(), server.issue_user_token()
        ).accepted


class TestPaginatedDistribution:
    def test_cold_client_streams_database_in_pages(self, stack, shared_factory,
                                                   tmp_path):
        server, endpoint = stack
        upload(server, shared_factory, 30)
        repo = LocalRepository(path=tmp_path / "repo.json")
        client = CommunixClient(
            endpoint=endpoint, repository=repo,
            clock=ManualClock(start=1_000_000.0), page_size=8,
        )
        report = client.poll_once()
        assert not report.failed
        assert report.pages == 4  # 8+8+8+6 under the server page cap
        assert report.received == 30
        assert len(repo) == 30
        assert repo.server_index == 30
        ids = {repo.signature_at(i).sig_id for i in range(30)}
        assert len(ids) == 30

    def test_download_racing_uploads_converges_exactly_once(
            self, stack, shared_factory):
        server, endpoint = stack
        upload(server, shared_factory, 10)
        repo = LocalRepository()
        client = CommunixClient(
            endpoint=endpoint, repository=repo,
            clock=ManualClock(start=1_000_000.0), page_size=4,
        )
        stop = threading.Event()

        def writer():
            # Bounded: an unbounded writer could outpace the paging reader
            # forever (poll_once loops while the server reports more).
            for _ in range(40):
                if stop.is_set():
                    return
                upload(server, shared_factory, 1)

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            client.poll_once()
        finally:
            stop.set()
            thread.join(10.0)
        # Settle: one more poll with the writers quiet drains the rest.
        client.poll_once()
        size = len(server.database)
        assert len(repo) == size
        assert repo.server_index == size
        ids = {repo.signature_at(i).sig_id for i in range(len(repo))}
        assert len(ids) == size  # every signature exactly once, no gaps

    def test_incremental_next_day_only_new_pages(self, stack, shared_factory):
        server, endpoint = stack
        upload(server, shared_factory, 12)
        repo = LocalRepository()
        client = CommunixClient(
            endpoint=endpoint, repository=repo,
            clock=ManualClock(start=1_000_000.0), page_size=8,
        )
        client.poll_once()
        assert repo.server_index == 12
        upload(server, shared_factory, 3)
        report = client.poll_once()
        assert report.requested_from == 12
        assert report.received == 3
        assert report.pages == 1
        assert len(repo) == 15
