"""End-to-end collaborative immunity (the paper's headline behaviour).

Node A experiences a deadlock; through Dimmunix -> plugin -> server ->
client -> agent, node B — which never deadlocked — becomes immune.
"""

import random

import pytest

import repro.sim.workloads as workloads_mod
from repro.client.endpoints import InProcessEndpoint
from repro.core.node import CommunixNode
from repro.core.pyapp import PythonAppAdapter
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer
from repro.sim.workloads import TwoLockProgram
from repro.util.clock import ManualClock
from tests.conftest import make_fast_config


@pytest.fixture
def server():
    return CommunixServer(
        authority=UserIdAuthority(rng=random.Random(21)),
        clock=ManualClock(start=1_000_000.0),
    )


def make_node(name, server) -> CommunixNode:
    node = CommunixNode(
        name, None, InProcessEndpoint(server),
        dimmunix_config=make_fast_config(),
    )
    node.attach_app(
        PythonAppAdapter("twolock-app", [workloads_mod], runtime=node.runtime)
    )
    node.start()
    return node


class TestCollaborativeImmunity:
    def test_node_b_protected_without_experiencing_deadlock(self, server):
        node_a = make_node("alice", server)
        node_b = make_node("bob", server)
        try:
            # Alice deadlocks; her Dimmunix captures and uploads.
            program_a = TwoLockProgram(node_a.runtime, "e2e")
            assert program_a.run_once(collide=True).deadlocked
            assert node_a.plugin.flush()
            assert len(server.database) == 1

            # Bob downloads, warms up (first-run nested-site discovery),
            # and the agent validates + installs the signature.
            assert node_b.sync_now().stored == 1
            program_b = TwoLockProgram(node_b.runtime, "e2e")
            assert not program_b.run_once(collide=False).deadlocked
            report = node_b.start_application()
            assert report.accepted == 1
            assert len(node_b.history) == 1

            # The same colliding schedule that killed Alice is now avoided.
            result = program_b.run_once(collide=True)
            assert not result.deadlocked
            assert node_b.runtime.stats.deadlocks_detected == 0
            assert node_b.runtime.stats.avoidance_blocks >= 1
        finally:
            node_a.close()
            node_b.close()

    def test_uploaded_signature_carries_hashes(self, server):
        node_a = make_node("alice", server)
        try:
            TwoLockProgram(node_a.runtime, "hash").run_once(collide=True)
            node_a.plugin.flush()
            _, blobs = server.process_get(0)
            from repro.core.signature import DeadlockSignature

            sig = DeadlockSignature.from_bytes(blobs[0])
            for t in sig.threads:
                assert all(f.code_hash for f in (*t.outer, *t.inner))
        finally:
            node_a.close()

    def test_signature_round_trip_is_byte_identical(self, server):
        node_a = make_node("alice", server)
        node_b = make_node("bob", server)
        try:
            TwoLockProgram(node_a.runtime, "bytes").run_once(collide=True)
            node_a.plugin.flush()
            node_b.sync_now()
            local = node_a.history.snapshot()[0]
            remote = node_b.repository.signature_at(0)
            assert local.sig_id == remote.sig_id
            assert local.to_bytes() == remote.to_bytes()
        finally:
            node_a.close()
            node_b.close()

    def test_third_node_joins_later(self, server):
        node_a = make_node("alice", server)
        try:
            TwoLockProgram(node_a.runtime, "late").run_once(collide=True)
            node_a.plugin.flush()
        finally:
            node_a.close()

        node_c = make_node("carol", server)
        try:
            node_c.sync_now()
            program = TwoLockProgram(node_c.runtime, "late")
            program.run_once(collide=False)
            report = node_c.start_application()
            assert report.accepted == 1
            assert not program.run_once(collide=True).deadlocked
        finally:
            node_c.close()

    def test_duplicate_uploads_deduplicated_at_server(self, server):
        node_a = make_node("alice", server)
        node_b = make_node("bob", server)
        try:
            # Both nodes hit the same deadlock and upload.
            for node in (node_a, node_b):
                TwoLockProgram(node.runtime, "dup").run_once(collide=True)
                node.plugin.flush()
            assert len(server.database) == 1
        finally:
            node_a.close()
            node_b.close()
