"""CLI smoke tests: the server and client entry points as real processes."""

import subprocess
import sys
import time

import pytest

from repro.client.endpoints import TcpEndpoint
from repro.net import parse_endpoint


@pytest.fixture
def live_server_process(tmp_path):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # The server prints "communix-server listening on host:port ..."
    # (possibly after log lines on the merged stderr stream).
    for _ in range(20):
        line = proc.stdout.readline()
        if line.startswith("communix-server listening on"):
            break
    assert line.startswith("communix-server listening on"), line
    address = line.split("listening on", 1)[1].split()[0]
    endpoint = parse_endpoint(address)
    yield proc, endpoint.host, endpoint.port
    proc.terminate()
    proc.wait(timeout=10)


class TestServerCli:
    def test_serves_real_clients(self, live_server_process, shared_factory):
        _, host, port = live_server_process
        endpoint = TcpEndpoint(host, port)
        try:
            token = endpoint.issue_token()
            sig = shared_factory.make_valid()
            assert endpoint.add(sig.to_bytes(), token)
            next_index, blobs = endpoint.get(0)
            assert next_index == 1 and len(blobs) == 1
        finally:
            endpoint.close()

    def test_client_cli_once_mode(self, live_server_process, shared_factory,
                                  tmp_path):
        _, host, port = live_server_process
        # Seed one signature through a direct endpoint first.
        endpoint = TcpEndpoint(host, port)
        try:
            endpoint.add(shared_factory.make_valid().to_bytes(),
                         endpoint.issue_token())
        finally:
            endpoint.close()

        repo_path = tmp_path / "repo.json"
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.client",
                "--server", f"{host}:{port}",
                "--repository", str(repo_path),
                "--once",
            ],
            capture_output=True,
            text=True,
            timeout=30,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "stored 1" in completed.stdout
        assert repo_path.exists()

    def test_bad_server_argument(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.client", "--server", "nonsense",
             "--once"],
            capture_output=True,
            text=True,
            timeout=30,
        )
        assert completed.returncode != 0

    def test_unix_addr_server_and_client_url(self, tmp_path, shared_factory):
        """--addr unix:// end to end: server child binds a UNIX socket,
        the daemon polls it by URL, and the socket file is unlinked on
        clean shutdown."""
        import os

        from repro.client.endpoints import SocketEndpoint

        sock_path = tmp_path / "cli-server.sock"
        url = f"unix://{sock_path}"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.server", "--addr", url],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            for _ in range(20):
                line = proc.stdout.readline()
                if line.startswith("communix-server listening on"):
                    break
            assert url in line, line

            endpoint = SocketEndpoint(url)
            try:
                endpoint.add(shared_factory.make_valid().to_bytes(),
                             endpoint.issue_token())
            finally:
                endpoint.close()

            completed = subprocess.run(
                [
                    sys.executable, "-m", "repro.client",
                    "--server", url,
                    "--repository", str(tmp_path / "repo.json"),
                    "--once",
                ],
                capture_output=True,
                text=True,
                timeout=30,
            )
            assert completed.returncode == 0, (
                completed.stdout + completed.stderr
            )
            assert "stored 1" in completed.stdout
        finally:
            proc.terminate()
            proc.wait(timeout=10)
        deadline = time.monotonic() + 5.0
        while os.path.exists(sock_path) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not os.path.exists(sock_path)


class TestFalsePositiveUserActions:
    def test_keep_and_discard(self, runtime, shared_factory):
        sig = shared_factory.make_valid()
        runtime.history.add(sig)
        runtime.keep_signature(sig.sig_id)  # suppresses future warnings
        assert runtime.discard_signature(sig.sig_id)
        assert len(runtime.history) == 0
        assert not runtime.discard_signature(sig.sig_id)
