"""Failure injection: corrupt state, dead peers, hostile inputs.

A production deployment survives partial failures; these tests pin the
documented behaviour for each failure mode.
"""

import json
import random

import pytest

import repro.sim.workloads as workloads_mod
from repro.client.client import CommunixClient
from repro.client.endpoints import InProcessEndpoint, TcpEndpoint
from repro.core.history import DeadlockHistory
from repro.core.node import CommunixNode
from repro.core.pyapp import PythonAppAdapter
from repro.core.repository import LocalRepository
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer
from repro.sim.workloads import TwoLockProgram
from repro.util.clock import ManualClock
from repro.util.errors import HistoryError
from tests.conftest import make_fast_config


class TestCorruptPersistence:
    def test_corrupt_history_fails_loud(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text("}{ definitely not json")
        with pytest.raises(HistoryError):
            DeadlockHistory(path=path)

    def test_truncated_history_fails_loud(self, tmp_path, shared_factory):
        path = tmp_path / "history.json"
        history = DeadlockHistory(path=path)
        history.add(shared_factory.make_valid().with_origin("local"))
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        with pytest.raises(HistoryError):
            DeadlockHistory(path=path)

    def test_repository_entry_corruption(self, tmp_path, shared_factory):
        path = tmp_path / "repo.json"
        repo = LocalRepository(path=path)
        repo.append_from_server([shared_factory.make_valid()])
        payload = json.loads(path.read_text())
        payload["signatures"][0]["threads"] = "oops"
        path.write_text(json.dumps(payload))
        with pytest.raises(Exception):
            LocalRepository(path=path)


class TestDeadServer:
    def test_plugin_survives_dead_server(self):
        """A node whose server is unreachable keeps full local immunity."""
        endpoint = TcpEndpoint("127.0.0.1", 1)  # connection refused
        node = CommunixNode("lonely", None, DeadTokenEndpoint(endpoint),
                            dimmunix_config=make_fast_config())
        node.attach_app(
            PythonAppAdapter("app", [workloads_mod], runtime=node.runtime)
        )
        node.start()
        try:
            program = TwoLockProgram(node.runtime, "dead")
            first = program.run_once(collide=True)
            assert first.deadlocked
            assert len(node.history) == 1  # local immunity intact
            node.plugin.flush(timeout=2.0)
            assert node.plugin.failed_uploads  # upload failed, retained
            second = program.run_once(collide=True)
            assert not second.deadlocked  # avoidance unaffected
            report = node.sync_now()
            assert report.failed
        finally:
            node.close()


class DeadTokenEndpoint:
    """Wraps a dead TCP endpoint but lets token issue succeed so the node
    can be constructed (its server died after registration)."""

    def __init__(self, inner):
        self._inner = inner

    def issue_token(self):
        return "feed" * 24

    def add(self, blob, token):
        return self._inner.add(blob, token)

    def get(self, from_index):
        return self._inner.get(from_index)


class TestHostileServer:
    def test_client_survives_garbage_blobs(self, manual_clock, shared_factory):
        class GarbageServer:
            def get(self, from_index):
                good = shared_factory.make_valid().to_bytes()
                return 3, [b"\x00\x01garbage", b"{}", good]

        repo = LocalRepository()
        client = CommunixClient(endpoint=GarbageServer(), repository=repo,
                                clock=manual_clock)
        report = client.poll_once()
        assert report.malformed == 2
        assert report.stored == 1
        assert len(repo) == 1

    def test_server_index_not_poisoned_backwards(self, manual_clock, shared_factory):
        class RewindingServer:
            def __init__(self):
                self.calls = 0

            def get(self, from_index):
                self.calls += 1
                if self.calls == 1:
                    return 5, [shared_factory.make_valid().to_bytes()]
                return 1, []  # malicious rewind

        repo = LocalRepository()
        client = CommunixClient(endpoint=RewindingServer(), repository=repo,
                                clock=manual_clock)
        client.poll_once()
        assert repo.server_index == 5
        client.poll_once()
        assert repo.server_index == 5  # monotone


class TestHostileClients:
    def test_server_survives_malformed_floods(self, manual_clock):
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(8)), clock=manual_clock
        )
        token = server.issue_user_token()
        for payload in (b"", b"\x00" * 10, b"[1,2,3]", b'{"version":1}'):
            outcome = server.process_add(payload, token)
            assert not outcome.accepted
        assert len(server.database) == 0
        # The server is still fully functional afterwards.
        assert server.process_get(0) == (0, [])


class TestNodeRestart:
    def test_state_survives_restart(self, tmp_path, shared_factory):
        """History, repository, and cursors persist across node restarts."""
        server = CommunixServer(
            authority=UserIdAuthority(rng=random.Random(12)),
            clock=ManualClock(start=1_000_000.0),
        )
        token = server.issue_user_token()
        sig = shared_factory.make_valid()
        server.process_add(sig.to_bytes(), token)

        endpoint = InProcessEndpoint(server)
        data_dir = tmp_path / "node"

        node = CommunixNode("restarting", None, endpoint, data_dir=data_dir,
                            dimmunix_config=make_fast_config())
        node.attach_app(
            PythonAppAdapter("app", [workloads_mod], runtime=node.runtime)
        )
        node.start()
        node.sync_now()
        assert len(node.repository) == 1
        node.close()

        reborn = CommunixNode("restarting", None, endpoint, data_dir=data_dir,
                              dimmunix_config=make_fast_config())
        reborn.attach_app(
            PythonAppAdapter("app", [workloads_mod], runtime=reborn.runtime)
        )
        reborn.start()
        try:
            assert len(reborn.repository) == 1
            report = reborn.sync_now()
            assert report.received == 0  # incremental: nothing new
        finally:
            reborn.close()
