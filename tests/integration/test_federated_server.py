"""End-to-end federation: worker processes killed -9 under a live client.

The acceptance bar for the federated tier: with ``--fsync always``, every
ADD any worker *acked* before a SIGKILL — of a replica or of the log
owner itself — is served by a paginated drain afterwards, the surviving
workers keep serving, and the coordinator owns the unix socket file's
lifecycle (left alone on a worker crash, unlinked at coordinator exit).
"""

from __future__ import annotations

import os
import re
import select
import signal
import subprocess
import sys
import time

import pytest

from repro.client.endpoints import SocketEndpoint
from repro.loadgen.signatures import random_signature_blobs

_WORKERS = re.compile(
    r"communix-federation: (\d+) workers \(log owner pid (\d+), "
    r"replicas ([^)]+)\)"
)
_LISTENING = re.compile(r"communix-server listening on (\S+)")


class _Federation:
    """A ``python -m repro.server --server-procs N`` coordinator child."""

    def __init__(self, procs: int, addr: str, data_dir: str, *extra: str):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.server",
                "--addr", addr,
                "--server-procs", str(procs),
                "--data-dir", data_dir,
                "--quota-per-day", "100000",
                "--fsync", "always",
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.owner_pid: int | None = None
        self.replica_pids: list[int] = []
        self.bound_addr: str | None = None
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise AssertionError(
                    f"federation exited during startup (rc={self.proc.poll()})"
                )
            match = _WORKERS.search(line)
            if match:
                assert int(match.group(1)) == procs
                self.owner_pid = int(match.group(2))
                if match.group(3) != "none":
                    self.replica_pids = [int(pid) for pid
                                         in match.group(3).split(", ")]
            match = _LISTENING.search(line)
            if match:
                self.bound_addr = match.group(1)
                assert self.owner_pid is not None
                return
        raise AssertionError("federation did not start in time")

    def wait_for(self, needle: str, timeout: float = 20.0) -> str:
        """Read coordinator output until a line contains ``needle``."""
        deadline = time.monotonic() + timeout
        seen: list[str] = []
        while time.monotonic() < deadline:
            ready, _, _ = select.select([self.proc.stdout], [], [], 0.2)
            if not ready:
                continue
            line = self.proc.stdout.readline()
            if not line:
                break
            seen.append(line)
            if needle in line:
                return line
        raise AssertionError(
            f"never saw {needle!r} in coordinator output: {seen}"
        )

    def terminate(self, expect_rc: int = 0) -> str:
        self.proc.send_signal(signal.SIGTERM)
        out = self.proc.stdout.read()
        assert self.proc.wait(timeout=30) == expect_rc, out
        return out

    def cleanup(self) -> None:
        if self.proc.poll() is None:  # pragma: no cover - failed test path
            self.proc.kill()
            self.proc.wait(timeout=10)


@pytest.fixture
def paths(tmp_path):
    return str(tmp_path / "data"), str(tmp_path / "server.sock")


def _drain(endpoint: SocketEndpoint, page_size: int = 5) -> list[bytes]:
    blobs: list[bytes] = []
    cursor, more = 0, True
    while more:
        cursor, page, more = endpoint.get_page(cursor, page_size)
        blobs.extend(page)
        assert len(page) <= page_size
    return blobs


def _kill9(pid: int) -> None:
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.02)


class TestKillReplica:
    def test_survivors_serve_and_no_acked_add_is_lost(self, paths):
        data_dir, sock = paths
        fed = _Federation(2, f"unix://{sock}", data_dir,
                          "--checkpoint-every", "6")
        acked: list[bytes] = []
        try:
            endpoint = SocketEndpoint(f"unix://{sock}")
            try:
                token = endpoint.issue_token()
                for blob in random_signature_blobs(8, seed=77):
                    assert endpoint.add(blob, token)
                    acked.append(blob)
            finally:
                endpoint.close()

            _kill9(fed.replica_pids[0])
            line = fed.wait_for("exited unexpectedly")
            assert "replica" in line
            # The crash is detected, the tier keeps serving: a fresh
            # connection lands on a survivor and both ADD and GET work.
            assert os.path.exists(sock)  # socket file is coordinator-owned
            endpoint = SocketEndpoint(f"unix://{sock}")
            try:
                token = endpoint.issue_token()
                for blob in random_signature_blobs(4, seed=78):
                    assert endpoint.add(blob, token)
                    acked.append(blob)
                assert _drain(endpoint) == acked
            finally:
                endpoint.close()
            tail = fed.terminate(expect_rc=1)  # a worker did crash
            assert "12 durable" in tail
        finally:
            fed.cleanup()
        # Graceful coordinator exit unlinks the socket file it bound.
        assert not os.path.exists(sock)

        # Restart as a plain single-process server: every acked ADD is
        # there, in order — same bytes a client would have drained.
        restart = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.server",
             "--addr", f"unix://{sock}", "--data-dir", data_dir,
             "--quota-per-day", "100000", "--fsync", "always"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            while True:
                line = restart.stdout.readline()
                assert line, "restarted server died"
                if "listening on" in line:
                    break
            endpoint = SocketEndpoint(f"unix://{sock}")
            try:
                assert _drain(endpoint) == acked
            finally:
                endpoint.close()
        finally:
            restart.kill()
            restart.wait(timeout=10)


class TestKillLogOwner:
    def test_replicas_serve_reads_and_fail_writes_closed(self, paths):
        data_dir, sock = paths
        fed = _Federation(2, f"unix://{sock}", data_dir)
        acked: list[bytes] = []
        try:
            endpoint = SocketEndpoint(f"unix://{sock}")
            try:
                token = endpoint.issue_token()
                for blob in random_signature_blobs(6, seed=81):
                    assert endpoint.add(blob, token)
                    acked.append(blob)
            finally:
                endpoint.close()

            _kill9(fed.owner_pid)
            line = fed.wait_for("exited unexpectedly")
            assert "log owner" in line
            # The surviving replica serves reads from its replicated
            # copy: a consistent *prefix* of the acked history (its
            # apply-stream froze wherever it was when the owner died —
            # the full history is the restart's job below).  ADDs must
            # fail *closed*: without the log owner nothing can be made
            # durable, so nothing may be acked.
            endpoint = SocketEndpoint(f"unix://{sock}")
            try:
                drained = _drain(endpoint)
            finally:
                endpoint.close()
            # No freshness bound: on a loaded box the apply-stream may
            # trail by a few records at the instant of the kill.  What is
            # guaranteed is consistency (a prefix, never reordered or
            # invented data) — and full durability, which the restart
            # below proves for every acked ADD.
            assert drained == acked[:len(drained)]
            endpoint = SocketEndpoint(f"unix://{sock}")
            try:
                assert not endpoint.add(
                    random_signature_blobs(1, seed=82)[0], token
                )
            finally:
                endpoint.close()
            fed.terminate(expect_rc=1)
        finally:
            fed.cleanup()

        # Every acked ADD survived the owner's SIGKILL: restart over the
        # same data dir and drain.
        restart = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.server",
             "--addr", f"unix://{sock}", "--data-dir", data_dir,
             "--quota-per-day", "100000", "--fsync", "always"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            while True:
                line = restart.stdout.readline()
                assert line, "restarted server died"
                if "listening on" in line:
                    break
            endpoint = SocketEndpoint(f"unix://{sock}")
            try:
                assert _drain(endpoint) == acked
            finally:
                endpoint.close()
        finally:
            restart.kill()
            restart.wait(timeout=10)


class TestTcpReusePort:
    def test_two_workers_share_a_tcp_port(self, tmp_path):
        data_dir = str(tmp_path / "data")
        fed = _Federation(2, "tcp://127.0.0.1:0", data_dir)
        try:
            host_port = fed.bound_addr
            assert not host_port.endswith(":0")  # port 0 was resolved
            blobs = random_signature_blobs(5, seed=91)
            endpoint = SocketEndpoint(f"tcp://{host_port}")
            try:
                token = endpoint.issue_token()
                for blob in blobs:
                    assert endpoint.add(blob, token)
                # This connection may sit on a replica whose apply-stream
                # trails the acked history by a beat; a drain is always a
                # consistent prefix and converges on the full history.
                deadline = time.monotonic() + 10.0
                drained = _drain(endpoint)
                while drained != blobs and time.monotonic() < deadline:
                    time.sleep(0.05)
                    drained = _drain(endpoint)
                assert drained == blobs
            finally:
                endpoint.close()
            tail = fed.terminate()
            assert "served 5 adds" in tail
        finally:
            fed.cleanup()
