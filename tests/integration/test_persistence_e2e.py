"""End-to-end durability: a real server process, killed -9, restarted.

The acceptance bar for the store subsystem: with ``--fsync always``, every
ADD the server *acked* before a SIGKILL is served by a paginated GET drain
after restart — same bytes, same order, same indices — and a checkpointed
restart replays only the records past the manifest.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.client.endpoints import SocketEndpoint
from repro.loadgen.signatures import random_signature_blobs
from repro.store import load_manifest

_RESTORED = re.compile(
    r"restored (\d+) signatures .* \((\d+) replayed past the checkpoint"
)


class _ServerProcess:
    """A ``python -m repro.server`` child with parsed startup lines."""

    def __init__(self, data_dir: str, sock_path: str, *extra: str):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.server",
                "--addr", f"unix://{sock_path}",
                "--data-dir", data_dir,
                "--quota-per-day", "100000",
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.restored: tuple[int, int] | None = None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise AssertionError(
                    f"server exited during startup (rc={self.proc.poll()})"
                )
            match = _RESTORED.search(line)
            if match:
                self.restored = (int(match.group(1)), int(match.group(2)))
            if "listening on" in line:
                return
        raise AssertionError("server did not start in time")

    def kill9(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=10)

    def terminate(self) -> str:
        """SIGTERM (graceful drain) and return the remaining stdout."""
        self.proc.send_signal(signal.SIGTERM)
        out = self.proc.stdout.read()
        assert self.proc.wait(timeout=15) == 0
        return out

    def cleanup(self) -> None:
        if self.proc.poll() is None:  # pragma: no cover - failed test path
            self.proc.kill()
            self.proc.wait(timeout=10)


@pytest.fixture
def paths(tmp_path):
    return str(tmp_path / "data"), str(tmp_path / "server.sock")


def _drain(endpoint: SocketEndpoint, page_size: int = 5) -> list[bytes]:
    blobs: list[bytes] = []
    cursor, more = 0, True
    while more:
        cursor, page, more = endpoint.get_page(cursor, page_size)
        blobs.extend(page)
        assert len(page) <= page_size
    return blobs


class TestKillNineDurability:
    def test_acked_adds_survive_sigkill(self, paths):
        data_dir, sock = paths
        blobs = random_signature_blobs(17, seed=99)
        server = _ServerProcess(data_dir, sock,
                                "--fsync", "always",
                                "--checkpoint-every", "6")
        acked = []
        try:
            endpoint = SocketEndpoint(f"unix://{sock}")
            try:
                token = endpoint.issue_token()
                for blob in blobs:
                    assert endpoint.add(blob, token)  # acked == durable
                    acked.append(blob)
            finally:
                endpoint.close()
            server.kill9()  # no drain, no seal, no final checkpoint
        finally:
            server.cleanup()
        assert os.path.exists(sock)  # SIGKILL leaves the socket file behind

        restarted = _ServerProcess(data_dir, sock, "--fsync", "always",
                                   "--checkpoint-every", "6")
        try:
            # Startup replayed every acked record; auto-checkpoints fired
            # at 6 and 12, so only 17 - 12 = 5 records needed validation.
            assert restarted.restored == (17, 5)
            endpoint = SocketEndpoint(f"unix://{sock}")
            try:
                assert _drain(endpoint) == acked
                # The database keeps accepting where it left off.
                extra = random_signature_blobs(1, seed=7)[0]
                assert endpoint.add(extra, endpoint.issue_token())
                next_index, page, _ = endpoint.get_page(17, 5)
                assert next_index == 18 and page == [extra]
            finally:
                endpoint.close()
        finally:
            restarted.cleanup()

    def test_sigterm_drains_seals_and_unlinks(self, paths):
        data_dir, sock = paths
        blobs = random_signature_blobs(5, seed=3)
        server = _ServerProcess(data_dir, sock, "--fsync", "interval:50")
        try:
            endpoint = SocketEndpoint(f"unix://{sock}")
            try:
                token = endpoint.issue_token()
                for blob in blobs:
                    assert endpoint.add(blob, token)
            finally:
                endpoint.close()
            tail = server.terminate()
        finally:
            server.cleanup()
        # Graceful drain: stats printed, store sealed with a final
        # checkpoint, UNIX socket unlinked — no mid-write death.
        assert "5 durable, checkpointed at 5" in tail
        assert not os.path.exists(sock)
        manifest = load_manifest(data_dir)
        assert manifest.record_count == 5

        restarted = _ServerProcess(data_dir, sock, "--fsync", "always")
        try:
            # Everything is inside the checkpoint: zero records replayed
            # past the manifest.
            assert restarted.restored == (5, 0)
            endpoint = SocketEndpoint(f"unix://{sock}")
            try:
                assert _drain(endpoint) == blobs
            finally:
                endpoint.close()
        finally:
            restarted.cleanup()
