"""DoS containment integration tests (§III-C1, §IV-B).

The attacker tries to flood the pipeline with malicious signatures; every
layer (server quota, adjacency, client-side depth/nesting/hash checks) must
hold the line as the paper claims.
"""

import random

import pytest

from repro.appmodel import SignatureFactory
from repro.client.client import CommunixClient
from repro.client.endpoints import InProcessEndpoint
from repro.core.agent import CommunixAgent
from repro.core.history import DeadlockHistory
from repro.core.repository import LocalRepository
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer
from repro.util.clock import ManualClock


@pytest.fixture
def server(manual_clock):
    return CommunixServer(
        authority=UserIdAuthority(rng=random.Random(31)), clock=manual_clock
    )


class TestServerSideContainment:
    def test_flood_bounded_by_quota(self, server, shared_factory):
        """100 attackers x 5 ids can force at most 5,000 adds per day; with
        a scaled-down attack (5 attackers x 2 ids) the bound is 100."""
        accepted = 0
        for _ in range(5):  # attackers
            for _ in range(2):  # stolen ids each
                token = server.issue_user_token()
                for _ in range(30):  # spam far beyond the quota
                    sig = shared_factory.make_foreign()
                    if server.process_add(sig.to_bytes(), token).accepted:
                        accepted += 1
        assert accepted <= 5 * 2 * 10

    def test_forged_tokens_all_rejected(self, server, shared_factory):
        rng = random.Random(3)
        for _ in range(20):
            fake = "".join(rng.choice("0123456789abcdef") for _ in range(96))
            sig = shared_factory.make_valid()
            assert not server.process_add(sig.to_bytes(), fake).accepted
        assert len(server.database) == 0

    def test_adjacent_fakes_from_one_id_rejected(self, server, shared_factory):
        token = server.issue_user_token()
        base, adj = shared_factory.make_adjacent_pair()
        assert server.process_add(base.to_bytes(), token).accepted
        assert not server.process_add(adj.to_bytes(), token).accepted


class TestClientSideContainment:
    def test_malicious_batch_mostly_rejected(self, shared_app, manual_clock, server):
        """Even fakes that the server accepted (valid tokens, within quota,
        non-adjacent) die at the agent unless they satisfy hash + depth +
        nesting — and those that survive are bounded by the nested sites."""
        factory = SignatureFactory(shared_app, seed=77)
        attack = (
            [factory.make_shallow(depth=random.Random(1).randrange(1, 5))
             for _ in range(10)]
            + [factory.make_foreign() for _ in range(10)]
            + [factory.make_non_nested() for _ in range(10)]
        )
        # Deliver through the real pipeline: server -> client -> repository.
        endpoint = InProcessEndpoint(server)
        for sig in attack:
            token = server.issue_user_token()  # attacker with many ids
            server.process_add(sig.to_bytes(), token)
        repo = LocalRepository()
        client = CommunixClient(endpoint=endpoint, repository=repo,
                                clock=manual_clock)
        client.poll_once()

        history = DeadlockHistory()
        agent = CommunixAgent(shared_app, history, repo)
        report = agent.on_application_start()
        assert report.accepted == 0
        assert len(history) == 0

    def test_accepted_signatures_bounded_by_nested_sites(self, shared_app):
        """§III-C1: with N nested blocks, an attacker cannot force more than
        N distinct outer-top locations into the history."""
        factory = SignatureFactory(shared_app, seed=13)
        history = DeadlockHistory()
        repo = LocalRepository()
        agent = CommunixAgent(shared_app, history, repo)
        repo.append_from_server([factory.make_valid() for _ in range(50)])
        agent.on_application_start()
        nested = shared_app.nested_sync_sites()
        outer_tops = {
            t.outer.top.location for s in history.snapshot() for t in s.threads
        }
        assert outer_tops <= nested
        assert len(outer_tops) <= len(nested)


class TestGeneralizationAbuse:
    def test_remote_merge_cannot_undercut_depth_floor(self, shared_app):
        """§III-C1: 'the agent does not merge signatures below depth 5, for
        the outer call stacks' — an attacker cannot generalize an existing
        signature down to depth < 5."""
        from repro.core.generalization import Generalizer

        factory = SignatureFactory(shared_app, seed=21)
        history = DeadlockHistory()
        gen = Generalizer(history)
        a, b = factory.make_mergeable_pair(depth_a=10, depth_b=8, common=3)
        gen.incorporate(a)
        result = gen.incorporate(b)
        # common suffix is 3 < 5: the merge must be refused; both coexist.
        assert result.outcome == "added"
        assert all(
            t.outer.depth >= 5 for s in history.snapshot() for t in s.threads
        )
