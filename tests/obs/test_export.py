"""Exporters: Prometheus text rendering and the JSONL metrics log."""

from __future__ import annotations

import json
import time

from repro.obs import (
    MetricsLogWriter,
    MetricsRegistry,
    last_snapshot_line,
    metric_name,
    render_prometheus,
)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("adds_accepted").add(42)
    registry.gauge("db.size").set(42.0)
    histogram = registry.histogram("stage.validate")
    for value in (0.001, 0.002, 0.004):
        histogram.record(value)
    return registry


def test_metric_name_mangling():
    assert metric_name("stage.validate") == "communix_stage_validate"
    assert metric_name("loop.select_wait") == "communix_loop_select_wait"
    assert metric_name("weird-name!", namespace="x") == "x_weird_name_"


def test_render_prometheus_shape():
    text = render_prometheus(_populated_registry().snapshot())
    lines = text.splitlines()
    assert text.endswith("\n")
    assert "# TYPE communix_adds_accepted_total counter" in lines
    assert "communix_adds_accepted_total 42" in lines
    assert "# TYPE communix_db_size gauge" in lines
    assert "communix_db_size 42.0" in lines
    assert "# TYPE communix_stage_validate_seconds summary" in lines
    assert "communix_stage_validate_seconds_count 3" in lines
    quantiles = [line for line in lines
                 if line.startswith('communix_stage_validate_seconds{')]
    assert len(quantiles) == 3
    assert any('quantile="0.5"' in line for line in quantiles)
    assert any('quantile="0.99"' in line for line in quantiles)
    total = next(line for line in lines
                 if line.startswith("communix_stage_validate_seconds_sum"))
    assert float(total.split()[1]) > 0.0


def test_render_prometheus_empty_registry():
    assert render_prometheus(MetricsRegistry().snapshot()) == "\n"


def test_prometheus_values_are_parseable_floats():
    text = render_prometheus(_populated_registry().snapshot())
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        float(line.rsplit(" ", 1)[1])  # every sample value parses


def test_metrics_log_writer_appends_and_finalizes(tmp_path):
    path = tmp_path / "metrics.jsonl"
    registry = _populated_registry()
    writer = MetricsLogWriter(registry, str(path), interval=0.05)
    writer.start()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if path.exists() and path.read_text().count("\n") >= 2:
            break
        time.sleep(0.01)
    registry.counter("adds_accepted").add(8)
    writer.stop()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) >= 3  # periodic lines plus the final one
    for record in lines:
        assert "ts" in record
        assert "counters" in record and "histograms" in record
    # The final line reflects the post-stop state of the registry.
    assert lines[-1]["counters"]["adds_accepted"] == 50


def test_metrics_log_writer_stop_without_start(tmp_path):
    path = tmp_path / "metrics.jsonl"
    writer = MetricsLogWriter(MetricsRegistry(), str(path))
    writer.stop()  # no thread; still writes the final line
    assert len(path.read_text().splitlines()) == 1


def test_last_snapshot_line(tmp_path):
    path = tmp_path / "metrics.jsonl"
    assert last_snapshot_line(str(path)) is None  # missing file
    path.write_text("")
    assert last_snapshot_line(str(path)) is None  # empty file
    path.write_text('{"ts": 1, "counters": {"a": 1}}\n'
                    '{"ts": 2, "counters": {"a": 5}}\n')
    record = last_snapshot_line(str(path))
    assert record == {"ts": 2, "counters": {"a": 5}}
    path.write_text('{"ts": 1}\nnot json\n')
    assert last_snapshot_line(str(path)) is None  # torn tail
