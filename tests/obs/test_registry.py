"""MetricsRegistry / ShardedCounter / NullRegistry behavior and races."""

from __future__ import annotations

import threading

from repro.obs import NULL_REGISTRY, MetricsRegistry, NullRegistry, ShardedCounter
from repro.server.server import ShardedCounter as ServerShardedCounter


def test_server_reexports_the_same_counter():
    # The class moved from repro.server.server to repro.obs; the server's
    # historical name must stay importable and identical.
    assert ServerShardedCounter is ShardedCounter


def test_counter_basics():
    counter = ShardedCounter()
    assert counter.value() == 0
    counter.add()
    counter.add(4)
    assert counter.value() == 5


def test_counter_concurrent_hammer_is_exact():
    counter = ShardedCounter()
    threads = 8
    per_thread = 50_000
    start = threading.Barrier(threads + 1)

    def worker() -> None:
        start.wait()
        for _ in range(per_thread):
            counter.add()

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    start.wait()
    # Reads during the hammer must be sane (monotone-ish, bounded) and
    # must survive new shards appearing mid-sum.
    last = 0
    for _ in range(100):
        value = counter.value()
        assert 0 <= value <= threads * per_thread
        assert value >= last or True  # per-shard adds are not ordered
        last = value
    for thread in pool:
        thread.join()
    assert counter.value() == threads * per_thread


def test_counter_value_retries_on_resize():
    counter = ShardedCounter()
    counter.add(7)
    real_shards = counter._shards

    class FlakyShards:
        def __init__(self) -> None:
            self.failures = 3

        def values(self):
            if self.failures:
                self.failures -= 1
                raise RuntimeError("dictionary changed size during iteration")
            return real_shards.values()

    flaky = FlakyShards()
    counter._shards = flaky
    try:
        assert counter.value() == 7
    finally:
        counter._shards = real_shards
    assert flaky.failures == 0


def test_registry_get_or_create_is_stable():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    assert registry.counter("a") is not registry.counter("b")


def test_registry_concurrent_get_or_create_single_instance():
    registry = MetricsRegistry()
    threads = 8
    start = threading.Barrier(threads)
    seen = []

    def worker() -> None:
        start.wait()
        counter = registry.counter("contended")
        counter.add()
        seen.append(counter)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert len(set(map(id, seen))) == 1
    assert registry.counter("contended").value() == threads


def test_snapshot_shape_and_derived_metrics():
    registry = MetricsRegistry()
    registry.counter("reqs").add(3)
    registry.gauge("depth").set(2.5)
    registry.histogram("stage.x").record(0.004)
    registry.register_counter("derived.ok", lambda: 11)
    registry.register_gauge("derived.g", lambda: 1.5)
    registry.register_counter("derived.broken", lambda: 1 // 0)
    registry.register_gauge("derived.broken_g", lambda: 1 // 0)
    snap = registry.snapshot()
    assert snap["counters"] == {"reqs": 3, "derived.ok": 11}
    assert snap["gauges"] == {"depth": 2.5, "derived.g": 1.5}
    assert "derived.broken" not in snap["counters"]
    assert "derived.broken_g" not in snap["gauges"]
    assert snap["histograms"]["stage.x"]["count"] == 1


def test_snapshot_while_hammered_is_coherent():
    registry = MetricsRegistry()
    stop = threading.Event()

    def worker() -> None:
        counter = registry.counter("hot")
        histogram = registry.histogram("stage.hot")
        while not stop.is_set():
            counter.add()
            histogram.record(0.001)

    pool = [threading.Thread(target=worker) for _ in range(4)]
    for thread in pool:
        thread.start()
    try:
        for _ in range(200):
            snap = registry.snapshot()
            assert snap["counters"].get("hot", 0) >= 0
            assert snap["histograms"].get("stage.hot", {}).get("count", 0) >= 0
    finally:
        stop.set()
        for thread in pool:
            thread.join()
    final = registry.snapshot()
    assert final["counters"]["hot"] == final["histograms"]["stage.hot"]["count"]


def test_null_registry_is_inert():
    assert NULL_REGISTRY.enabled is False
    assert isinstance(NULL_REGISTRY, NullRegistry)
    counter = NULL_REGISTRY.counter("anything")
    counter.add(100)
    assert counter.value() == 0
    gauge = NULL_REGISTRY.gauge("g")
    gauge.set(5.0)
    assert gauge.value() == 0.0
    histogram = NULL_REGISTRY.histogram("h")
    histogram.record(1.0)
    assert histogram.summary() == {"count": 0}
    NULL_REGISTRY.register_counter("x", lambda: 1)
    NULL_REGISTRY.register_gauge("y", lambda: 1.0)
    assert NULL_REGISTRY.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }


def test_enabled_flag_distinguishes_flavours():
    assert MetricsRegistry().enabled is True
    assert NullRegistry().enabled is False
