"""StageHistogram: bucket math, snapshots, and wire parity with loadgen."""

from __future__ import annotations

import math
import threading

import pytest

from repro.loadgen.metrics import LatencyHistogram
from repro.obs.histogram import (
    BUCKET_COUNT,
    GROWTH,
    MIN_LATENCY,
    StageHistogram,
    bucket_index,
    bucket_upper_bound,
    summary_from_wire,
)

SAMPLES = [0.0000005, 0.000001, 0.00025, 0.0013, 0.0013, 0.047, 0.9, 2.5]


def test_bucket_index_monotonic():
    last = -1
    value = MIN_LATENCY / 2
    while value < 200.0:
        index = bucket_index(value)
        assert 0 <= index < BUCKET_COUNT
        assert index >= last
        last = index
        value *= 1.07


def test_bucket_bounds_cover_their_index():
    for index in range(1, BUCKET_COUNT - 1):
        upper = bucket_upper_bound(index)
        # A value just under the bound maps into the bucket (or an
        # adjacent one at the float boundary); the bound itself never
        # maps *below* its bucket.
        assert bucket_index(upper * 0.999) <= index
        assert bucket_index(upper * 1.001) >= index


def test_bucket_zero_and_cap():
    assert bucket_index(0.0) == 0
    assert bucket_index(MIN_LATENCY) == 0
    assert bucket_index(1e9) == BUCKET_COUNT - 1
    assert bucket_upper_bound(0) == MIN_LATENCY
    assert bucket_upper_bound(3) == pytest.approx(MIN_LATENCY * GROWTH ** 3)


def test_record_and_snapshot_totals():
    histogram = StageHistogram()
    for value in SAMPLES:
        histogram.record(value)
    snap = histogram.snapshot()
    assert snap.count == len(SAMPLES)
    assert snap.total == pytest.approx(sum(SAMPLES))
    assert snap.min == min(SAMPLES)
    assert snap.max == max(SAMPLES)
    assert sum(snap.counts) == len(SAMPLES)


def test_percentiles_clamped_to_observed_max():
    histogram = StageHistogram()
    for value in SAMPLES:
        histogram.record(value)
    snap = histogram.snapshot()
    assert snap.percentile(50.0) <= snap.percentile(99.0)
    assert snap.percentile(100.0) == snap.max
    # The p50 bound brackets the true median within one bucket.
    median = sorted(SAMPLES)[len(SAMPLES) // 2 - 1]
    assert snap.percentile(50.0) >= median
    assert snap.percentile(50.0) <= median * GROWTH * 1.001


def test_empty_snapshot_and_summary():
    snap = StageHistogram().snapshot()
    assert snap.count == 0
    assert snap.min == 0.0
    assert snap.percentile(99.0) == 0.0
    assert StageHistogram().summary() == {"count": 0}
    assert StageHistogram().to_wire() == {
        "buckets": {}, "count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
    }


def test_wire_parity_with_loadgen_histogram():
    """Server-side and client-side histograms share one bucket grid: the
    same samples produce identical wire buckets, and each side's
    percentiles agree."""
    stage = StageHistogram()
    client = LatencyHistogram()
    for value in SAMPLES:
        stage.record(value)
        client.record(value)
    stage_wire = stage.to_wire()
    client_wire = client.to_wire()
    assert stage_wire["buckets"] == client_wire["buckets"]
    assert stage_wire["count"] == client_wire["count"]
    assert stage_wire["total"] == pytest.approx(client_wire["total"])
    for pct in (50.0, 95.0, 99.0):
        assert stage.snapshot().percentile(pct) == client.percentile(pct)


def test_loadgen_from_wire_decodes_stage_wire():
    """The client's existing decoder consumes a server stage histogram —
    the STATS v2 compatibility contract."""
    stage = StageHistogram()
    for value in SAMPLES:
        stage.record(value)
    decoded = LatencyHistogram.from_wire(stage.to_wire())
    assert decoded.count == len(SAMPLES)
    assert decoded.percentile(95) == stage.snapshot().percentile(95.0)


def test_summary_from_wire_matches_summary():
    stage = StageHistogram()
    for value in SAMPLES:
        stage.record(value)
    direct = stage.summary()
    via_wire = summary_from_wire(stage.to_wire())
    for key, value in direct.items():
        assert via_wire[key] == pytest.approx(value)


def test_summary_from_wire_tolerates_null_min():
    # loadgen encodes an empty histogram with "min": None.
    assert summary_from_wire(LatencyHistogram().to_wire()) == {"count": 0}


def test_concurrent_recording_loses_nothing():
    """Hammer one histogram from many threads while snapshotting; the
    final merge must account for every sample exactly once."""
    histogram = StageHistogram()
    threads = 8
    per_thread = 20_000
    start = threading.Barrier(threads + 1)

    def worker(seed: int) -> None:
        start.wait()
        value = MIN_LATENCY * (seed + 1)
        for _ in range(per_thread):
            histogram.record(value)

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    start.wait()
    # Concurrent snapshots must never raise and never see impossible
    # state (count below zero, NaN totals).
    for _ in range(50):
        snap = histogram.snapshot()
        assert 0 <= snap.count <= threads * per_thread
        assert not math.isnan(snap.total)
    for thread in pool:
        thread.join()
    final = histogram.snapshot()
    assert final.count == threads * per_thread
    assert sum(final.counts) == threads * per_thread


def test_snapshot_retries_on_new_shard_mid_merge():
    """A RuntimeError from the shard dict (thread registering a shard
    mid-iteration) is retried, not propagated."""
    histogram = StageHistogram()
    histogram.record(0.001)
    real_shards = histogram._shards

    class FlakyShards:
        def __init__(self) -> None:
            self.failures = 2

        def values(self):
            if self.failures:
                self.failures -= 1
                raise RuntimeError("dictionary changed size during iteration")
            return real_shards.values()

    flaky = FlakyShards()
    object.__setattr__(histogram, "_shards", flaky)
    try:
        snap = histogram.snapshot()
    finally:
        object.__setattr__(histogram, "_shards", real_shards)
    assert flaky.failures == 0
    assert snap.count == 1
