"""Trace ids, the trace-context wire codec, and the slow-trace ring.

The replication reply carries the owner-side stage stamps back to the
replica (PR 10); the codec must round-trip losslessly or cross-process
traces would quietly drift from what the owner measured.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    ALL_STAGES,
    RequestTrace,
    STAGE_DB_APPEND,
    STAGE_HANDLER,
    STAGE_QUEUE_WAIT,
    STAGE_VALIDATE,
    TraceBuffer,
    decode_trace_stages,
    encode_trace_stages,
    format_trace_id,
    mint_trace_id,
)

# Stage names on the wire are arbitrary short UTF-8; exercise well past
# the constants to prove the codec doesn't depend on them.
stage_names = st.text(min_size=1, max_size=32).filter(
    lambda s: len(s.encode("utf-8")) <= 255
)
seconds = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)
stage_maps = st.dictionaries(stage_names, seconds, max_size=20)


class TestTraceIds:
    def test_mint_is_nonzero_and_unique(self):
        ids = {mint_trace_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert 0 not in ids

    def test_format_is_16_hex_digits(self):
        assert format_trace_id(0x1) == "0" * 15 + "1"
        rendered = format_trace_id(mint_trace_id())
        assert len(rendered) == 16
        int(rendered, 16)  # parses back

    def test_trace_minted_on_construction(self):
        trace = RequestTrace(op="add")
        assert trace.trace_id != 0
        assert trace.hex_id() == format_trace_id(trace.trace_id)

    def test_preseeded_id_is_kept(self):
        # The owner side of a forwarded ADD must stamp the replica's id.
        trace = RequestTrace(op="fwd_add", trace_id=0xABCD)
        assert trace.trace_id == 0xABCD


class TestTraceStageCodec:
    @settings(max_examples=200)
    @given(stage_maps)
    def test_round_trip_is_lossless(self, stages):
        decoded = decode_trace_stages(encode_trace_stages(stages))
        assert set(decoded) == set(stages)
        for name, value in stages.items():
            # Exact f64 equality, not approx: the wire form is the bit
            # pattern, so nothing may be lost.
            assert decoded[name] == value or (
                math.isnan(value) and math.isnan(decoded[name])
            )

    def test_empty_stages_encode_to_one_byte(self):
        assert encode_trace_stages({}) == b"\x00"
        assert decode_trace_stages(b"\x00") == {}
        assert decode_trace_stages(b"") == {}

    def test_real_stage_constants_round_trip(self):
        stages = {stage: float(i) / 7.0 for i, stage in enumerate(ALL_STAGES)}
        assert decode_trace_stages(encode_trace_stages(stages)) == stages

    def test_overlong_name_rejected(self):
        with pytest.raises(ValueError):
            encode_trace_stages({"x" * 256: 1.0})

    def test_merge_stages_accumulates(self):
        trace = RequestTrace(op="add")
        trace.stamp(STAGE_VALIDATE, 0.25)
        trace.merge_stages({STAGE_VALIDATE: 0.5, STAGE_DB_APPEND: 1.0})
        assert trace.stages[STAGE_VALIDATE] == pytest.approx(0.75)
        assert trace.stages[STAGE_DB_APPEND] == pytest.approx(1.0)


def _trace(total_s, op="add"):
    trace = RequestTrace(op=op)
    trace.stamp(STAGE_HANDLER, total_s)
    return trace


class TestTraceBuffer:
    def test_retains_slowest_and_orders_descending(self):
        buffer = TraceBuffer(capacity=3)
        for total in (0.05, 0.3, 0.01, 0.2, 0.4):
            buffer.note(_trace(total))
        totals = [entry["total_ms"] for entry in buffer.snapshot()]
        assert totals == pytest.approx([400.0, 300.0, 200.0])

    def test_find_by_hex_id(self):
        buffer = TraceBuffer(capacity=4)
        trace = _trace(0.1)
        buffer.note(trace)
        found = buffer.find(trace.hex_id())
        assert found is not None
        assert found["trace_id"] == trace.hex_id()
        assert buffer.find("0" * 16) is None

    def test_empty_trace_ignored(self):
        buffer = TraceBuffer(capacity=2)
        buffer.note(RequestTrace(op="noop"))
        assert len(buffer) == 0

    def test_partial_trace_ranked_by_stage_sum(self):
        # The owner's half of a forwarded ADD has no handler stamp; it
        # must still outrank a faster complete trace.
        buffer = TraceBuffer(capacity=1)
        buffer.note(_trace(0.01))
        owner = RequestTrace(op="fwd_add")
        owner.stamp(STAGE_VALIDATE, 0.2)
        owner.stamp(STAGE_DB_APPEND, 0.3)
        buffer.note(owner)
        (entry,) = buffer.snapshot()
        assert entry["trace_id"] == owner.hex_id()
        assert entry["total_ms"] == pytest.approx(500.0)

    def test_stages_reported_in_pipeline_order_ms(self):
        buffer = TraceBuffer()
        trace = RequestTrace(op="add")
        trace.stamp(STAGE_HANDLER, 0.002)
        trace.stamp(STAGE_QUEUE_WAIT, 0.001)
        buffer.note(trace)
        (entry,) = buffer.snapshot()
        assert list(entry["stages_ms"]) == [STAGE_QUEUE_WAIT, STAGE_HANDLER]
        assert entry["stages_ms"][STAGE_QUEUE_WAIT] == pytest.approx(1.0)
