"""Merging per-worker registry snapshots must equal pooled recording.

The federation coordinator folds one ``MetricsRegistry.snapshot()`` per
worker process into a single tier-wide snapshot; any divergence from
"record everything into one registry" would make the merged metrics lie.
"""

import random

import pytest

from repro.obs import (
    MetricsRegistry,
    merge_registry_snapshots,
    summary_from_wire,
)


def _record(registry, samples, adds):
    histogram = registry.histogram("stage.validate")
    for sample in samples:
        histogram.record(sample)
    registry.counter("net.slow_requests").add(adds)
    registry.gauge("loop.queue_depth").set(adds)


class TestMergeRegistrySnapshots:
    def test_merged_equals_pooled(self):
        rng = random.Random(7)
        shares = [[rng.uniform(1e-6, 0.25) for _ in range(50)]
                  for _ in range(3)]
        workers = [MetricsRegistry() for _ in range(3)]
        pooled = MetricsRegistry()
        for worker, samples in zip(workers, shares):
            _record(worker, samples, len(samples))
        _record(pooled, [s for share in shares for s in share],
                sum(len(share) for share in shares))
        merged = merge_registry_snapshots(w.snapshot() for w in workers)
        expected = pooled.snapshot()
        assert merged["counters"] == expected["counters"]
        assert merged["gauges"] == expected["gauges"]
        merged_hist = merged["histograms"]["stage.validate"]
        expected_hist = expected["histograms"]["stage.validate"]
        assert merged_hist["buckets"] == expected_hist["buckets"]
        assert merged_hist["count"] == expected_hist["count"]
        assert merged_hist["total"] == pytest.approx(expected_hist["total"])
        assert merged_hist["min"] == expected_hist["min"]
        assert merged_hist["max"] == expected_hist["max"]
        # Percentiles of the merged histogram are percentiles of the pool.
        assert (summary_from_wire(merged_hist)["p95_ms"]
                == summary_from_wire(expected_hist)["p95_ms"])

    def test_empty_and_missing_snapshots_are_ignored(self):
        registry = MetricsRegistry()
        _record(registry, [0.01, 0.02], 2)
        merged = merge_registry_snapshots(
            [registry.snapshot(), {}, None,
             {"counters": {}, "gauges": {}, "histograms": {}}]
        )
        assert merged["counters"] == {"net.slow_requests": 2}
        assert merged["histograms"]["stage.validate"]["count"] == 2

    def test_disjoint_names_union(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("a").add(1)
        right.counter("b").add(2)
        right.histogram("stage.flush").record(0.001)
        merged = merge_registry_snapshots([left.snapshot(), right.snapshot()])
        assert merged["counters"] == {"a": 1, "b": 2}
        assert list(merged["histograms"]) == ["stage.flush"]

    def test_empty_histogram_does_not_poison_min(self):
        empty, busy = MetricsRegistry(), MetricsRegistry()
        empty.histogram("stage.validate")  # created, never recorded
        busy.histogram("stage.validate").record(0.5)
        merged = merge_registry_snapshots([empty.snapshot(), busy.snapshot()])
        hist = merged["histograms"]["stage.validate"]
        assert hist["count"] == 1
        assert hist["min"] == 0.5
        assert hist["max"] == 0.5

    def test_all_empty_inputs_yield_empty_sections(self):
        merged = merge_registry_snapshots([None, {}, {}])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}
        assert "sketches" not in merged

    def test_min_max_pool_across_partial_histograms(self):
        # The global min arrives in the *last* partial and the global max
        # in the middle one — pooling must not depend on arrival order.
        values = [[0.2, 0.3], [0.9], [0.001, 0.4]]
        workers = []
        for samples in values:
            registry = MetricsRegistry()
            for sample in samples:
                registry.histogram("stage.handler").record(sample)
            workers.append(registry.snapshot())
        merged = merge_registry_snapshots(workers)
        hist = merged["histograms"]["stage.handler"]
        assert hist["count"] == 5
        assert hist["min"] == 0.001
        assert hist["max"] == 0.9

    def test_sketch_geometry_mismatch_keeps_first(self):
        from repro.guard.sketch import CountMinSketch

        wide, narrow = CountMinSketch(64, 4), CountMinSketch(32, 4)
        wide.update("uid-1", 3)
        narrow.update("uid-1", 5)
        merged = merge_registry_snapshots([
            {"sketches": {"guard.uid": wide.to_wire()}},
            {"sketches": {"guard.uid": narrow.to_wire()}},
        ])
        # Mismatched geometry cannot be merged; the first wire survives
        # untouched rather than poisoning the whole snapshot merge.
        assert merged["sketches"]["guard.uid"] == wide.to_wire()

    def test_sketch_matching_geometry_merges_totals(self):
        from repro.guard.sketch import CountMinSketch

        a, b = CountMinSketch(64, 4), CountMinSketch(64, 4)
        a.update("uid-1", 3)
        b.update("uid-1", 5)
        merged = merge_registry_snapshots([
            {"sketches": {"guard.uid": a.to_wire()}},
            {"sketches": {"guard.uid": b.to_wire()}},
        ])
        assert merged["sketches"]["guard.uid"]["total"] == 8

    def test_exemplars_pool_with_later_snapshot_winning(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("stage.handler").record(0.5, exemplar="aaaa")
        left.histogram("stage.handler").record(0.001, exemplar="early")
        right.histogram("stage.handler").record(0.5, exemplar="bbbb")
        merged = merge_registry_snapshots([left.snapshot(), right.snapshot()])
        exemplars = merged["histograms"]["stage.handler"]["exemplars"]
        # Same bucket in both partials: the later snapshot's trace wins;
        # buckets only one partial touched survive the merge.
        assert "bbbb" in exemplars.values()
        assert "aaaa" not in exemplars.values()
        assert "early" in exemplars.values()
