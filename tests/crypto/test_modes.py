"""Block mode and padding tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ecb_decrypt,
    ecb_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.util.errors import CryptoError

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


class TestPkcs7:
    def test_pads_to_block(self):
        assert pkcs7_pad(b"abc") == b"abc" + bytes([13] * 13)

    def test_full_block_payload_gets_extra_block(self):
        padded = pkcs7_pad(b"x" * 16)
        assert len(padded) == 32
        assert padded[-1] == 16

    def test_unpad_round_trip(self):
        for size in range(0, 33):
            data = bytes(range(size % 256))[:size]
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    @pytest.mark.parametrize(
        "corrupt",
        [
            b"",  # empty
            b"x" * 15,  # not block-aligned
            b"x" * 15 + b"\x00",  # pad length 0 is invalid
            b"x" * 15 + b"\x11",  # pad length 17 > block size
        ],
    )
    def test_unpad_rejects_garbage(self, corrupt):
        with pytest.raises(CryptoError):
            pkcs7_unpad(corrupt)

    def test_unpad_rejects_inconsistent_padding(self):
        bad = b"x" * 14 + bytes([1, 2])  # last byte claims 2, but x != 2
        with pytest.raises(CryptoError):
            pkcs7_unpad(bad)


class TestCbcVector:
    def test_sp800_38a_f2_1_first_block(self):
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        ciphertext = cbc_encrypt(AES128(KEY), plaintext, IV, pad=False)
        assert ciphertext.hex() == "7649abac8119b246cee98e9b12e9197d"

    def test_cbc_chaining_differs_from_ecb(self):
        plaintext = b"A" * 32  # two identical blocks
        ecb = ecb_encrypt(AES128(KEY), plaintext, pad=False)
        cbc = cbc_encrypt(AES128(KEY), plaintext, IV, pad=False)
        assert ecb[:16] == ecb[16:]  # ECB leaks the repetition
        assert cbc[:16] != cbc[16:]  # CBC hides it


class TestModeErrors:
    def test_cbc_requires_block_iv(self):
        with pytest.raises(CryptoError):
            cbc_encrypt(AES128(KEY), b"data", b"shortiv")

    def test_unaligned_ciphertext_rejected(self):
        with pytest.raises(CryptoError):
            ecb_decrypt(AES128(KEY), b"x" * 15)
        with pytest.raises(CryptoError):
            cbc_decrypt(AES128(KEY), b"x" * 17, IV)

    def test_unpadded_encrypt_requires_alignment(self):
        with pytest.raises(CryptoError):
            ecb_encrypt(AES128(KEY), b"x" * 5, pad=False)


class TestModeProperties:
    @given(st.binary(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_ecb_round_trip(self, payload):
        cipher = AES128(KEY)
        assert ecb_decrypt(cipher, ecb_encrypt(cipher, payload)) == payload

    @given(st.binary(max_size=200), st.binary(min_size=16, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_cbc_round_trip(self, payload, iv):
        cipher = AES128(KEY)
        assert cbc_decrypt(cipher, cbc_encrypt(cipher, payload, iv), iv) == payload

    @given(st.binary(max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_cbc_iv_sensitivity(self, payload):
        cipher = AES128(KEY)
        iv2 = bytes([IV[0] ^ 1]) + IV[1:]
        assert cbc_encrypt(cipher, payload, IV) != cbc_encrypt(cipher, payload, iv2)
