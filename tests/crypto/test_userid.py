"""Encrypted user-ID token tests (§III-C2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.userid import DEFAULT_SERVER_KEY, UserIdAuthority
from repro.util.errors import CryptoError


@pytest.fixture
def authority() -> UserIdAuthority:
    return UserIdAuthority(rng=random.Random(7))


class TestIssueDecode:
    def test_round_trip(self, authority):
        token = authority.issue_for(42, issued_at=1234)
        decoded = authority.decode(token)
        assert decoded.user_id == 42
        assert decoded.issued_at == 1234

    def test_sequential_issue(self, authority):
        first = authority.decode(authority.issue())
        second = authority.decode(authority.issue())
        assert (first.user_id, second.user_id) == (1, 2)

    def test_tokens_are_hex(self, authority):
        token = authority.issue()
        bytes.fromhex(token)  # must not raise

    def test_reissue_same_uid_different_token(self, authority):
        # Random IVs: even the same uid gets distinct tokens.
        t1 = authority.issue_for(5)
        t2 = authority.issue_for(5)
        assert t1 != t2
        assert authority.decode(t1).user_id == authority.decode(t2).user_id == 5


class TestForgeryResistance:
    def test_users_cannot_manufacture_ids(self, authority):
        # "The id is encrypted, in order to prevent users from manufacturing
        # their own ids."  Random hex of the right length must be rejected.
        rng = random.Random(1)
        for _ in range(20):
            fake = "".join(rng.choice("0123456789abcdef") for _ in range(96))
            with pytest.raises(CryptoError):
                authority.decode(fake)

    def test_bit_flip_rejected(self, authority):
        token = authority.issue_for(7)
        raw = bytearray(bytes.fromhex(token))
        raw[20] ^= 0x01
        with pytest.raises(CryptoError):
            authority.decode(raw.hex())

    def test_truncated_token_rejected(self, authority):
        token = authority.issue_for(7)
        with pytest.raises(CryptoError):
            authority.decode(token[: len(token) // 2])

    def test_non_hex_rejected(self, authority):
        with pytest.raises(CryptoError):
            authority.decode("zz" * 48)

    def test_wrong_key_rejected(self):
        issuing = UserIdAuthority(key=b"A" * 16, rng=random.Random(3))
        verifying = UserIdAuthority(key=b"B" * 16)
        token = issuing.issue_for(9)
        with pytest.raises(CryptoError):
            verifying.decode(token)

    def test_uid_out_of_range(self, authority):
        with pytest.raises(CryptoError):
            authority.issue_for(-1)
        with pytest.raises(CryptoError):
            authority.issue_for(2**63)


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**63 - 1),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_any_uid_round_trips(self, uid, issued):
        authority = UserIdAuthority(rng=random.Random(uid & 0xFFFF))
        decoded = authority.decode(authority.issue_for(uid, issued_at=issued))
        assert decoded.user_id == uid
        assert decoded.issued_at == issued


class TestDefaultKey:
    def test_default_key_is_128_bits(self):
        assert len(DEFAULT_SERVER_KEY) == 16

    def test_default_authorities_interoperate(self):
        token = UserIdAuthority(rng=random.Random(5)).issue_for(11)
        assert UserIdAuthority().decode(token).user_id == 11
