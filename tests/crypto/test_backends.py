"""Pluggable crypto backends: parity, selection, fallback (ISSUE PR 6).

The fast (OpenSSL) backend is only a legitimate optimization if it is
*byte-identical* to the pure-Python FIPS-197 reference on every input —
the property tests here pin that over random keys, IVs, and payloads, and
the token tests pin it end-to-end (issue on one backend, decode on the
other, including the MAC check).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.backend import (
    BACKEND_ENV,
    BLOCK_SIZE,
    CryptoBackend,
    FastBackend,
    PurePythonBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
)
from repro.crypto.modes import (
    cbc_decrypt_keyed,
    cbc_encrypt_keyed,
    ecb_decrypt_keyed,
    ecb_encrypt_keyed,
)
from repro.crypto.userid import UserIdAuthority
from repro.util.errors import CryptoError

pure = get_backend("pure")
fast_available = "fast" in available_backends()
needs_fast = pytest.mark.skipif(
    not fast_available, reason="cryptography package not importable"
)

keys = st.binary(min_size=16, max_size=16)
ivs = st.binary(min_size=16, max_size=16)
payloads = st.binary(min_size=0, max_size=256)


@needs_fast
class TestCrossBackendParity:
    """Both backends must agree byte-for-byte on every operation."""

    @settings(max_examples=60, deadline=None)
    @given(key=keys, iv=ivs, data=payloads)
    def test_cbc_encrypt_identical(self, key, iv, data):
        fast = get_backend("fast")
        assert (fast.cbc_encrypt(key, iv, data)
                == pure.cbc_encrypt(key, iv, data))

    @settings(max_examples=60, deadline=None)
    @given(key=keys, iv=ivs, data=payloads)
    def test_cbc_cross_decrypt(self, key, iv, data):
        fast = get_backend("fast")
        ct = pure.cbc_encrypt(key, iv, data)
        assert fast.cbc_decrypt(key, iv, ct) == data
        ct = fast.cbc_encrypt(key, iv, data)
        assert pure.cbc_decrypt(key, iv, ct) == data

    @settings(max_examples=60, deadline=None)
    @given(key=keys, data=payloads)
    def test_ecb_identical_and_cross(self, key, data):
        fast = get_backend("fast")
        ct_pure = pure.ecb_encrypt(key, data)
        ct_fast = fast.ecb_encrypt(key, data)
        assert ct_pure == ct_fast
        assert fast.ecb_decrypt(key, ct_pure) == data
        assert pure.ecb_decrypt(key, ct_fast) == data

    @settings(max_examples=30, deadline=None)
    @given(key=keys, iv=ivs,
           data=st.binary(min_size=16, max_size=128).filter(
               lambda b: len(b) % 16 == 0))
    def test_unpadded_cbc_identical(self, key, iv, data):
        fast = get_backend("fast")
        assert (fast.cbc_encrypt(key, iv, data, pad=False)
                == pure.cbc_encrypt(key, iv, data, pad=False))

    def test_tokens_cross_decode_with_mac(self):
        # Same deterministic rng -> same uid sequence and IVs, so the
        # tokens (ciphertext *and* embedded MAC) must match exactly, and
        # each backend must accept the other's output.
        a_pure = UserIdAuthority(rng=random.Random(99), backend="pure")
        a_fast = UserIdAuthority(rng=random.Random(99), backend="fast")
        for _ in range(8):
            t_pure = a_pure.issue()
            t_fast = a_fast.issue()
            assert t_pure == t_fast
            assert a_fast.decode(t_pure).user_id == a_pure.decode(t_fast).user_id

    def test_tampered_token_rejected_by_both(self):
        a_pure = UserIdAuthority(rng=random.Random(5), backend="pure")
        a_fast = UserIdAuthority(rng=random.Random(5), backend="fast")
        token = a_pure.issue()
        # Flip one ciphertext nibble; the MAC check must catch it on both.
        bad = token[:-1] + ("0" if token[-1] != "0" else "1")
        for authority in (a_pure, a_fast):
            with pytest.raises(CryptoError):
                authority.decode(bad)


class TestKeyedModeHelpers:
    def test_round_trip_default_backend(self):
        key = bytes(range(16))
        iv = bytes(range(16, 32))
        assert cbc_decrypt_keyed(key, cbc_encrypt_keyed(key, b"hi", iv),
                                 iv) == b"hi"
        assert ecb_decrypt_keyed(key, ecb_encrypt_keyed(key, b"hi")) == b"hi"

    def test_explicit_backend_arg(self):
        key = b"k" * 16
        ct = ecb_encrypt_keyed(key, b"data", backend="pure")
        assert ecb_decrypt_keyed(key, ct, backend="pure") == b"data"


class TestSelection:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        # CI runs this file with REPRO_CRYPTO_BACKEND pinned to each
        # backend in turn; selection tests need the un-pinned default.
        monkeypatch.delenv(BACKEND_ENV, raising=False)

    def test_pure_always_available(self):
        assert "pure" in available_backends()
        assert get_backend("pure").name == "pure"

    def test_auto_resolves_to_default(self):
        assert get_backend("auto").name == default_backend_name()
        assert get_backend(None).name == default_backend_name()

    def test_backend_object_passes_through(self):
        backend = PurePythonBackend()
        assert get_backend(backend) is backend

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "pure")
        assert get_backend(None).name == "pure"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "pure")
        assert get_backend(default_backend_name()).name == default_backend_name()

    def test_unknown_backend_raises(self):
        with pytest.raises(CryptoError, match="unknown crypto backend"):
            get_backend("turbo")

    def test_bad_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "turbo")
        with pytest.raises(CryptoError, match="unknown crypto backend"):
            get_backend(None)

    def test_case_and_whitespace_tolerated(self):
        assert get_backend("  PURE ").name == "pure"

    def test_register_custom_backend(self):
        import repro.crypto.backend as backend_module

        class Custom(PurePythonBackend):
            name = "custom-test"

        register_backend(Custom())
        try:
            assert get_backend("custom-test").name == "custom-test"
            assert "custom-test" in available_backends()
        finally:
            del backend_module._REGISTRY["custom-test"]


class TestForcedFallback:
    """Simulate an environment without the cryptography package."""

    @pytest.fixture
    def no_fast(self, monkeypatch):
        import repro.crypto.backend as backend_module

        monkeypatch.delenv(BACKEND_ENV, raising=False)
        broken = FastBackend()
        monkeypatch.setattr(broken, "_cipher_cls", None)
        monkeypatch.setitem(backend_module._REGISTRY, "fast", broken)
        return broken

    def test_default_falls_back_to_pure(self, no_fast):
        assert default_backend_name() == "pure"
        assert get_backend(None).name == "pure"
        assert available_backends() == ["pure"]

    def test_explicit_fast_pin_fails_loudly(self, no_fast):
        with pytest.raises(CryptoError, match="not available"):
            get_backend("fast")

    def test_authority_still_works_on_fallback(self, no_fast):
        authority = UserIdAuthority(rng=random.Random(3))
        assert authority.backend_name == "pure"
        token = authority.issue()
        assert authority.decode(token).user_id == 1


class TestErrorSurface:
    @pytest.mark.parametrize("name", available_backends())
    def test_bad_iv_rejected(self, name):
        backend = get_backend(name)
        with pytest.raises(CryptoError):
            backend.cbc_encrypt(b"k" * 16, b"short-iv", b"data")

    @pytest.mark.parametrize("name", available_backends())
    def test_unaligned_ciphertext_rejected(self, name):
        backend = get_backend(name)
        with pytest.raises(CryptoError):
            backend.cbc_decrypt(b"k" * 16, b"i" * 16, b"x" * 17)

    @pytest.mark.parametrize("name", available_backends())
    def test_unaligned_unpadded_plaintext_rejected(self, name):
        backend = get_backend(name)
        with pytest.raises(CryptoError):
            backend.ecb_encrypt(b"k" * 16, b"x" * 5, pad=False)

    @pytest.mark.parametrize("name", available_backends())
    def test_bad_key_length_rejected(self, name):
        backend = get_backend(name)
        with pytest.raises(CryptoError):
            backend.ecb_encrypt(b"short", b"data")


@needs_fast
class TestFastBackendInternals:
    def test_context_reuse_is_key_safe(self):
        # Two keys alternating through the same thread-local context
        # cache must never cross-contaminate (contexts are keyed by the
        # key bytes, not object identity).
        fast = get_backend("fast")
        k1, k2 = b"a" * 16, b"b" * 16
        for _ in range(4):
            assert fast.ecb_decrypt(k1, fast.ecb_encrypt(k1, b"one")) == b"one"
            assert fast.ecb_decrypt(k2, fast.ecb_encrypt(k2, b"two")) == b"two"

    def test_many_keys_do_not_pin_contexts(self):
        fast = FastBackend()
        for i in range(200):  # crosses both cache-clear thresholds
            key = i.to_bytes(16, "big")
            assert fast.ecb_decrypt(key, fast.ecb_encrypt(key, b"x")) == b"x"

    def test_multiblock_cbc_round_trip(self):
        fast = get_backend("fast")
        key, iv = b"K" * 16, b"I" * 16
        data = bytes(range(256)) * 3  # many blocks exercises the chaining
        assert fast.cbc_decrypt(key, iv, fast.cbc_encrypt(key, iv, data)) == data
