"""AES-128 correctness against published test vectors."""

import pytest

from repro.crypto.aes import AES128, INV_SBOX, SBOX, _gmul, _xtime
from repro.util.errors import CryptoError


class TestKnownAnswerVectors:
    def test_fips197_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        cipher = AES128(key)
        assert cipher.encrypt_block(plaintext) == expected
        assert cipher.decrypt_block(expected) == plaintext

    @pytest.mark.parametrize(
        "plaintext,ciphertext",
        [
            ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
            ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
        ],
    )
    def test_sp800_38a_ecb_vectors(self, plaintext, ciphertext):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        cipher = AES128(key)
        assert cipher.encrypt_block(bytes.fromhex(plaintext)).hex() == ciphertext


class TestStructure:
    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox_inverts(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value
            assert SBOX[INV_SBOX[value]] == value

    def test_xtime_known_values(self):
        # {57} * {02} = {ae} (FIPS-197 section 4.2.1 example chain)
        assert _xtime(0x57) == 0xAE
        assert _xtime(0xAE) == 0x47

    def test_gmul_known_value(self):
        # {57} * {13} = {fe} from FIPS-197 section 4.2
        assert _gmul(0x57, 0x13) == 0xFE

    def test_gmul_identity_and_zero(self):
        for value in (0x00, 0x01, 0x53, 0xFF):
            assert _gmul(value, 1) == value
            assert _gmul(value, 0) == 0


class TestInputValidation:
    def test_bad_key_length(self):
        with pytest.raises(CryptoError):
            AES128(b"short")
        with pytest.raises(CryptoError):
            AES128(b"x" * 32)  # AES-256 keys are out of scope

    def test_bad_block_length(self):
        cipher = AES128(b"k" * 16)
        with pytest.raises(CryptoError):
            cipher.encrypt_block(b"tiny")
        with pytest.raises(CryptoError):
            cipher.decrypt_block(b"y" * 17)


class TestRoundTrips:
    def test_many_blocks_round_trip(self):
        cipher = AES128(bytes(range(16)))
        for i in range(64):
            block = bytes((i * 5 + j * 11) % 256 for j in range(16))
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_distinct_keys_distinct_ciphertexts(self):
        block = b"\x00" * 16
        c1 = AES128(b"a" * 16).encrypt_block(block)
        c2 = AES128(b"b" * 16).encrypt_block(block)
        assert c1 != c2
