"""Tests for canonical JSON encoding and stable hashing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.encoding import canonical_json, from_canonical_json, stable_hash


class TestCanonicalJson:
    def test_sorted_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == b'{"a":2,"b":1}'

    def test_compact_separators(self):
        assert b" " not in canonical_json({"a": [1, 2, 3], "b": {"c": 4}})

    def test_unicode_passthrough(self):
        data = canonical_json({"name": "Tözün"})
        assert from_canonical_json(data) == {"name": "Tözün"}

    def test_representation_independence(self):
        # Same logical object, different insertion orders -> same bytes.
        a = {"x": 1, "y": [1, 2], "z": {"k": True}}
        b = {"z": {"k": True}, "y": [1, 2], "x": 1}
        assert canonical_json(a) == canonical_json(b)

    def test_decode_accepts_str(self):
        assert from_canonical_json('{"a":1}') == {"a": 1}


json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-(2**31), 2**31) | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


class TestEncodingProperties:
    @given(json_values)
    @settings(max_examples=100)
    def test_round_trip(self, value):
        assert from_canonical_json(canonical_json(value)) == value

    @given(json_values)
    @settings(max_examples=100)
    def test_deterministic(self, value):
        assert canonical_json(value) == canonical_json(value)


class TestStableHash:
    def test_known_prefix_length(self):
        assert len(stable_hash(b"hello")) == 16
        assert len(stable_hash(b"hello", length=8)) == 8

    def test_str_and_bytes_agree(self):
        assert stable_hash("data") == stable_hash(b"data")

    def test_different_inputs_differ(self):
        assert stable_hash(b"a") != stable_hash(b"b")
