"""Tests for the clock abstraction."""

import threading
import time

import pytest

from repro.util.clock import ManualClock, SystemClock


class TestSystemClock:
    def test_now_tracks_wall_clock(self):
        clock = SystemClock()
        before = time.time()
        now = clock.now()
        after = time.time()
        assert before <= now <= after

    def test_sleep_blocks_roughly(self):
        clock = SystemClock()
        started = time.monotonic()
        clock.sleep(0.02)
        assert time.monotonic() - started >= 0.015


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(start=123.0).now() == 123.0

    def test_advance_moves_time(self):
        clock = ManualClock()
        clock.advance(5.0)
        assert clock.now() == 5.0
        clock.advance(0.5)
        assert clock.now() == 5.5

    def test_advance_rejects_negative(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_sleep_advances_instead_of_blocking(self):
        clock = ManualClock()
        started = time.monotonic()
        clock.sleep(3600.0)
        assert time.monotonic() - started < 0.5
        assert clock.now() == 3600.0

    def test_sleep_zero_is_noop(self):
        clock = ManualClock(start=10.0)
        clock.sleep(0.0)
        clock.sleep(-1.0)
        assert clock.now() == 10.0

    def test_wait_until_releases_on_advance(self):
        clock = ManualClock()
        reached = threading.Event()

        def waiter():
            if clock.wait_until(10.0, timeout=5.0):
                reached.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not reached.is_set()
        clock.advance(10.0)
        thread.join(timeout=2.0)
        assert reached.is_set()

    def test_wait_until_times_out_in_real_time(self):
        clock = ManualClock()
        assert clock.wait_until(10.0, timeout=0.05) is False
