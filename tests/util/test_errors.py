"""Tests for the exception hierarchy."""

import pytest

from repro.util.errors import (
    CommunixError,
    CryptoError,
    DeadlockError,
    HistoryError,
    ProtocolError,
    RateLimitExceeded,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [CryptoError, DeadlockError, HistoryError, ProtocolError,
         RateLimitExceeded, ValidationError],
    )
    def test_all_derive_from_communix_error(self, exc_type):
        assert issubclass(exc_type, CommunixError)

    def test_rate_limit_is_validation_error(self):
        assert issubclass(RateLimitExceeded, ValidationError)

    def test_deadlock_error_carries_signature(self):
        marker = object()
        err = DeadlockError("boom", signature=marker)
        assert err.signature is marker
        assert "boom" in str(err)

    def test_deadlock_error_signature_defaults_none(self):
        assert DeadlockError("x").signature is None
