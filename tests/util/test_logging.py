"""Tests for library logging helpers."""

import logging

from repro.util.logging import enable_console_logging, get_logger


class TestGetLogger:
    def test_namespaced(self):
        assert get_logger("server").name == "repro.server"

    def test_qualified_name_unchanged(self):
        assert get_logger("repro.core.agent").name == "repro.core.agent"

    def test_root_has_null_handler(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_enable_console_idempotent(self):
        root = logging.getLogger("repro")
        before = len(root.handlers)
        enable_console_logging()
        first = len(root.handlers)
        enable_console_logging()
        assert len(root.handlers) == first
        assert first <= before + 1
