"""Communix agent tests (§III-A/C/D): the startup inspection pass."""

import pytest

from repro.appmodel import SignatureFactory
from repro.appmodel.classfile import MethodBuilder
from repro.appmodel.classfile import ClassFile
from repro.core.agent import CommunixAgent
from repro.core.history import DeadlockHistory
from repro.core.repository import LocalRepository
from repro.core.validation import ClientSideValidator


@pytest.fixture
def pipeline(fresh_app):
    history = DeadlockHistory()
    repo = LocalRepository()
    agent = CommunixAgent(fresh_app, history, repo)
    factory = SignatureFactory(fresh_app, seed=5)
    return fresh_app, history, repo, agent, factory


class TestStartupPass:
    def test_valid_signatures_enter_history(self, pipeline):
        app, history, repo, agent, factory = pipeline
        repo.append_from_server([factory.make_valid() for _ in range(4)])
        report = agent.on_application_start()
        assert report.inspected == 4
        assert report.accepted == 4
        assert len(history) == report.added

    def test_invalid_signatures_rejected_by_stage(self, pipeline):
        app, history, repo, agent, factory = pipeline
        repo.append_from_server(
            [
                factory.make_valid(),
                factory.make_bad_hash(),
                factory.make_shallow(depth=2),
                factory.make_non_nested(),
                factory.make_foreign(),
            ]
        )
        report = agent.on_application_start()
        assert report.accepted == 1
        assert report.rejected.get("hash_mismatch") == 2  # bad hash + foreign
        assert report.rejected.get("too_shallow") == 1
        assert report.rejected.get("not_nested") == 1

    def test_each_signature_inspected_once(self, pipeline):
        app, history, repo, agent, factory = pipeline
        repo.append_from_server([factory.make_valid()])
        first = agent.on_application_start()
        second = agent.on_application_start()
        assert first.inspected == 1
        assert second.inspected == 0  # incremental inspection

    def test_new_downloads_processed_next_start(self, pipeline):
        app, history, repo, agent, factory = pipeline
        repo.append_from_server([factory.make_valid()])
        agent.on_application_start()
        repo.append_from_server([factory.make_valid()])
        report = agent.on_application_start()
        assert report.inspected == 1

    def test_same_bug_manifestations_merge(self, pipeline):
        app, history, repo, agent, factory = pipeline
        a, b = factory.make_mergeable_pair(depth_a=10, depth_b=9, common=6)
        repo.append_from_server([a, b])
        report = agent.on_application_start()
        assert report.accepted == 2
        assert report.added == 1
        assert report.merged == 1
        assert len(history) == 1

    def test_duplicate_across_days(self, pipeline):
        app, history, repo, agent, factory = pipeline
        sig = factory.make_valid()
        repo.append_from_server([sig])
        agent.on_application_start()
        # The same signature arrives again under a new server index.
        repo.append_from_server([sig], next_server_index=99)
        report = agent.on_application_start()
        # Dedup in the repository means it is never re-inspected.
        assert report.inspected == 0
        assert len(history) == 1


def build_latent_nested_app():
    """An app with a sync block whose nestedness depends on a class that is
    not loaded yet: ``enter; INVOKE ext.Ext.helper; exit``.  While ``ext.Ext``
    is unknown the analysis sees a non-nested block; once it loads (with a
    synchronized ``helper``), the same site becomes nested (§III-C3)."""
    from repro.appmodel.loader import Application

    app = Application("latent")
    for tag in ("one", "two"):
        cls = ClassFile(name=f"latent.Host{tag}")
        mb = MethodBuilder(cls.name, "entry", first_line=10)
        mb.monitor_enter()
        mb.invoke("latent.Ext.helper")
        mb.monitor_exit()
        cls.add_method(mb.build())
        app.load_class(cls)
    app.generation = 0
    return app


def sig_for_latent_app(app, depth=6):
    from repro.core.signature import (
        CallStack,
        DeadlockSignature,
        Frame,
        ThreadSignature,
    )

    threads = []
    for tag in ("one", "two"):
        cls = f"latent.Host{tag}"
        digest = app.bytecode_hash(cls)
        frames = [Frame(cls, "entry", 5, digest) for _ in range(depth - 1)]
        frames.append(Frame(cls, "entry", 10, digest))  # the monitorenter line
        outer = CallStack(frames)
        inner = CallStack([Frame(cls, "entry", 11, digest)])
        threads.append(ThreadSignature(outer=outer, inner=inner))
    return DeadlockSignature(threads=tuple(threads), origin="remote")


class TestNestingRecheck:
    def test_failed_nesting_recovered_after_class_load(self):
        app = build_latent_nested_app()
        history = DeadlockHistory()
        repo = LocalRepository()
        agent = CommunixAgent(app, history, repo)
        sig = sig_for_latent_app(app)
        repo.append_from_server([sig])

        report = agent.on_application_start()
        assert report.rejected.get("not_nested") == 1
        assert repo.pending_nesting(app.name) == [0]
        assert len(history) == 0

        # The missing class arrives (e.g. a plugin loads): helper is
        # synchronized, so both Host sites become nested.
        ext = ClassFile(name="latent.Ext")
        mb = MethodBuilder(ext.name, "helper", synchronized_method=True)
        mb.nop()
        ext.add_method(mb.build())
        app.load_class(ext)

        report2 = agent.on_application_start()
        assert report2.recheck_accepted == 1
        assert len(history) == 1
        assert repo.pending_nesting(app.name) == []

    def test_unrelated_class_load_keeps_pending(self, pipeline):
        app, history, repo, agent, factory = pipeline
        repo.append_from_server([factory.make_non_nested()])
        report = agent.on_application_start()
        assert report.rejected.get("not_nested") == 1
        extra = ClassFile(name=f"{app.name}.Extra")
        mb = MethodBuilder(extra.name, "noop")
        mb.nop()
        extra.add_method(mb.build())
        app.load_class(extra)
        report2 = agent.on_application_start()
        assert repo.pending_nesting(app.name) == [0]
        assert report2.recheck_accepted == 0

    def test_no_generation_change_skips_recheck(self, pipeline):
        app, history, repo, agent, factory = pipeline
        repo.append_from_server([factory.make_non_nested()])
        agent.on_application_start()
        report = agent.on_application_start()  # no class loads in between
        assert report.recheck_accepted == 0
        assert repo.pending_nesting(app.name) == [0]

    def test_relaxed_validator_configuration(self, pipeline):
        app, history, repo, agent, factory = pipeline
        agent.set_app(app, ClientSideValidator(app, require_nesting=False))
        repo.append_from_server([factory.make_non_nested()])
        report = agent.on_application_start()
        assert report.accepted == 1
