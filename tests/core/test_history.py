"""Tests for the persistent deadlock history."""

import json

import pytest

from repro.core.history import DeadlockHistory
from repro.core.signature import (
    CallStack,
    DeadlockSignature,
    Frame,
    ORIGIN_LOCAL,
    ThreadSignature,
)
from repro.util.errors import HistoryError


def make_sig(tag: int, origin=ORIGIN_LOCAL) -> DeadlockSignature:
    def stk(which: str, depth: int = 3) -> CallStack:
        return CallStack(
            Frame(f"app.C{tag}", f"{which}{i}", 10 * tag + i, "cd" * 8)
            for i in range(depth)
        )

    threads = (
        ThreadSignature(outer=stk("a"), inner=stk("b")),
        ThreadSignature(outer=stk("c"), inner=stk("d")),
    )
    return DeadlockSignature(threads=threads, origin=origin)


class TestBasics:
    def test_add_and_len(self):
        history = DeadlockHistory()
        assert history.add(make_sig(1))
        assert len(history) == 1
        assert make_sig(1) in history

    def test_duplicate_add_refused(self):
        history = DeadlockHistory()
        history.add(make_sig(1))
        assert not history.add(make_sig(1))
        assert len(history) == 1

    def test_version_bumps_on_mutation(self):
        history = DeadlockHistory()
        v0 = history.version
        history.add(make_sig(1))
        assert history.version > v0

    def test_snapshot_is_immutable_view(self):
        history = DeadlockHistory()
        history.add(make_sig(1))
        snap = history.snapshot()
        history.add(make_sig(2))
        assert len(snap) == 1

    def test_get_by_id(self):
        history = DeadlockHistory()
        sig = make_sig(3)
        history.add(sig)
        assert history.get(sig.sig_id) == sig
        assert history.get("nope") is None

    def test_remove(self):
        history = DeadlockHistory()
        sig = make_sig(1)
        history.add(sig)
        assert history.remove(sig.sig_id)
        assert len(history) == 0
        assert not history.remove(sig.sig_id)

    def test_same_bug_lookup(self):
        history = DeadlockHistory()
        sig = make_sig(1)
        history.add(sig)
        assert history.same_bug(make_sig(1)) == [sig]
        assert history.same_bug(make_sig(2)) == []


class TestReplace:
    def test_replace_swaps_in_place(self):
        history = DeadlockHistory()
        old, new = make_sig(1), make_sig(2)
        history.add(old)
        assert history.replace(old, new)
        assert history.get(old.sig_id) is None
        assert history.get(new.sig_id) == new
        assert len(history) == 1

    def test_replace_missing_old_fails(self):
        history = DeadlockHistory()
        assert not history.replace(make_sig(1), make_sig(2))

    def test_replace_with_existing_target_drops_old(self):
        history = DeadlockHistory()
        a, b = make_sig(1), make_sig(2)
        history.add(a)
        history.add(b)
        assert history.replace(a, b)
        assert len(history) == 1
        assert history.get(b.sig_id) == b


class TestListeners:
    def test_listener_called_on_add(self):
        history = DeadlockHistory()
        seen = []
        history.add_listener(seen.append)
        sig = make_sig(1)
        history.add(sig)
        assert seen == [sig]

    def test_listener_not_called_on_duplicate(self):
        history = DeadlockHistory()
        seen = []
        history.add(make_sig(1))
        history.add_listener(seen.append)
        history.add(make_sig(1))
        assert seen == []


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "history.json"
        history = DeadlockHistory(path=path)
        history.add(make_sig(1))
        history.add(make_sig(2))

        reloaded = DeadlockHistory(path=path)
        assert len(reloaded) == 2
        assert {s.sig_id for s in reloaded.snapshot()} == {
            s.sig_id for s in history.snapshot()
        }

    def test_origin_survives_persistence(self, tmp_path):
        path = tmp_path / "history.json"
        history = DeadlockHistory(path=path)
        history.add(make_sig(1, origin="remote"))
        reloaded = DeadlockHistory(path=path)
        assert reloaded.snapshot()[0].origin == "remote"

    def test_corrupt_file_raises_history_error(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text("{{{ not json")
        with pytest.raises(HistoryError):
            DeadlockHistory(path=path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(HistoryError):
            DeadlockHistory(path=path)

    def test_corrupt_entry_rejected(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text(
            json.dumps({"version": 1, "entries": [{"signature": {"bad": 1}}]})
        )
        with pytest.raises(HistoryError):
            DeadlockHistory(path=path)

    def test_save_without_path_raises(self):
        with pytest.raises(HistoryError):
            DeadlockHistory().save()

    def test_merge_from(self):
        history = DeadlockHistory()
        added = history.merge_from([make_sig(1), make_sig(1), make_sig(2)])
        assert added == 2
