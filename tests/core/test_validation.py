"""Client-side validation tests (§III-C3)."""

import pytest

from repro.core.signature import CallStack, DeadlockSignature, Frame, ThreadSignature
from repro.core.validation import (
    ClientSideValidator,
    RejectReason,
    trim_stack,
)


class FakeApp:
    """Minimal AppView: a hash table plus a nested-site set."""

    def __init__(self, hashes: dict, nested: set):
        self.name = "fake"
        self.generation = 0
        self._hashes = hashes
        self._nested = nested

    def frame_hash(self, frame):
        return self._hashes.get(frame.class_name)

    def nested_sync_sites(self, force: bool = False):
        return self._nested


H = {"app.A": "11" * 8, "app.B": "22" * 8, "app.C": "33" * 8}


def fr(cls, method, line, code_hash=None):
    return Frame(cls, method, line, code_hash if code_hash is not None else H[cls])


class TestTrimStack:
    def test_full_match_unchanged(self):
        app = FakeApp(H, set())
        stack = CallStack([fr("app.A", "f", 1), fr("app.A", "g", 2)])
        assert trim_stack(stack, app) == stack

    def test_top_mismatch_rejects(self):
        app = FakeApp(H, set())
        stack = CallStack([fr("app.A", "f", 1), fr("app.A", "g", 2, "bad0" * 4)])
        assert trim_stack(stack, app) is None

    def test_unknown_top_class_rejects(self):
        app = FakeApp(H, set())
        stack = CallStack([Frame("ghost.X", "g", 2, "ab" * 8)])
        assert trim_stack(stack, app) is None

    def test_lower_mismatch_trims(self):
        app = FakeApp(H, set())
        stack = CallStack(
            [
                fr("app.A", "bottom", 1),
                fr("app.B", "stale", 2, "feed" * 4),  # first mismatch from top
                fr("app.B", "mid", 3),
                fr("app.A", "top", 4),
            ]
        )
        trimmed = trim_stack(stack, app)
        assert trimmed.locations() == (
            ("app.B", "mid", 3),
            ("app.A", "top", 4),
        )

    def test_trim_keeps_longest_matching_suffix(self):
        # Mismatches at two depths: the cut happens at the highest one.
        app = FakeApp(H, set())
        stack = CallStack(
            [
                fr("app.A", "a", 1, "00" * 8),
                fr("app.A", "b", 2),
                fr("app.A", "c", 3, "00" * 8),
                fr("app.A", "d", 4),
                fr("app.A", "e", 5),
            ]
        )
        trimmed = trim_stack(stack, app)
        assert trimmed.locations() == (("app.A", "d", 4), ("app.A", "e", 5))

    def test_empty_stack_rejected(self):
        assert trim_stack(CallStack(), FakeApp(H, set())) is None


def make_sig(outer_stacks, inner_stacks):
    threads = tuple(
        ThreadSignature(outer=o, inner=i)
        for o, i in zip(outer_stacks, inner_stacks)
    )
    return DeadlockSignature(threads=threads, origin="remote")


def deep_stack(cls, top_method, top_line, depth=6):
    frames = [fr(cls, f"below{i}", i + 1) for i in range(depth - 1)]
    frames.append(fr(cls, top_method, top_line))
    return CallStack(frames)


class TestValidatorPipeline:
    def setup_method(self):
        self.nested = {("app.A", "outerA", 100), ("app.B", "outerB", 200)}
        self.app = FakeApp(H, self.nested)
        self.validator = ClientSideValidator(self.app)
        self.good_sig = make_sig(
            [deep_stack("app.A", "outerA", 100), deep_stack("app.B", "outerB", 200)],
            [deep_stack("app.A", "innerA", 101), deep_stack("app.B", "innerB", 201)],
        )

    def test_valid_signature_accepted(self):
        result = self.validator.validate(self.good_sig)
        assert result.accepted
        assert result.signature.sig_id == self.good_sig.sig_id

    def test_hash_reject_on_outer_top(self):
        bad_outer = CallStack(
            list(deep_stack("app.A", "outerA", 100))[:-1]
            + [fr("app.A", "outerA", 100, "f00d" * 4)]
        )
        sig = make_sig(
            [bad_outer, deep_stack("app.B", "outerB", 200)],
            [deep_stack("app.A", "innerA", 101), deep_stack("app.B", "innerB", 201)],
        )
        result = self.validator.validate(sig)
        assert not result.accepted
        assert result.reason is RejectReason.HASH_MISMATCH

    def test_hash_check_covers_inner_stacks(self):
        # "The hash checking covers also the inner call stacks" — a stale
        # inner top means the deadlock-prone code was changed: reject.
        bad_inner = CallStack([fr("app.A", "innerA", 101, "dead" * 4)])
        sig = make_sig(
            [deep_stack("app.A", "outerA", 100), deep_stack("app.B", "outerB", 200)],
            [bad_inner, deep_stack("app.B", "innerB", 201)],
        )
        result = self.validator.validate(sig)
        assert not result.accepted
        assert result.reason is RejectReason.HASH_MISMATCH

    def test_shallow_outer_rejected(self):
        sig = make_sig(
            [deep_stack("app.A", "outerA", 100, depth=3),
             deep_stack("app.B", "outerB", 200)],
            [deep_stack("app.A", "innerA", 101), deep_stack("app.B", "innerB", 201)],
        )
        result = self.validator.validate(sig)
        assert not result.accepted
        assert result.reason is RejectReason.TOO_SHALLOW

    def test_depth_checked_after_trimming(self):
        # Deep stack whose lower frames are stale: trimming makes it shallow.
        frames = [fr("app.A", f"below{i}", i, "00" * 8) for i in range(4)]
        frames += [fr("app.A", "mid", 50), fr("app.A", "outerA", 100)]
        sig = make_sig(
            [CallStack(frames), deep_stack("app.B", "outerB", 200)],
            [deep_stack("app.A", "innerA", 101), deep_stack("app.B", "innerB", 201)],
        )
        result = self.validator.validate(sig)
        assert not result.accepted
        assert result.reason is RejectReason.TOO_SHALLOW

    def test_non_nested_outer_rejected(self):
        sig = make_sig(
            [deep_stack("app.A", "notNested", 999),
             deep_stack("app.B", "outerB", 200)],
            [deep_stack("app.A", "innerA", 101), deep_stack("app.B", "innerB", 201)],
        )
        result = self.validator.validate(sig)
        assert not result.accepted
        assert result.reason is RejectReason.NOT_NESTED

    def test_nesting_check_optional(self):
        validator = ClientSideValidator(self.app, require_nesting=False)
        sig = make_sig(
            [deep_stack("app.A", "notNested", 999),
             deep_stack("app.B", "outerB", 200)],
            [deep_stack("app.A", "innerA", 101), deep_stack("app.B", "innerB", 201)],
        )
        assert validator.validate(sig).accepted

    def test_min_depth_configurable(self):
        validator = ClientSideValidator(self.app, min_outer_depth=2)
        sig = make_sig(
            [deep_stack("app.A", "outerA", 100, depth=2),
             deep_stack("app.B", "outerB", 200, depth=2)],
            [deep_stack("app.A", "innerA", 101), deep_stack("app.B", "innerB", 201)],
        )
        assert validator.validate(sig).accepted

    def test_inner_stacks_also_trimmed(self):
        stale_then_good = CallStack(
            [fr("app.C", "old", 7, "aa00" * 4), fr("app.A", "innerA", 101)]
        )
        sig = make_sig(
            [deep_stack("app.A", "outerA", 100), deep_stack("app.B", "outerB", 200)],
            [stale_then_good, deep_stack("app.B", "innerB", 201)],
        )
        result = self.validator.validate(sig)
        assert result.accepted
        inner_depths = sorted(t.inner.depth for t in result.signature.threads)
        assert inner_depths[0] == 1  # trimmed to the matching top frame


class TestValidatorOnAppModel:
    """The validator against the real synthetic app substrate."""

    def test_factory_valid_accepted(self, shared_app, shared_factory):
        validator = ClientSideValidator(shared_app)
        sig = shared_factory.make_valid()
        assert validator.validate(sig).accepted

    def test_factory_bad_hash_rejected(self, shared_app, shared_factory):
        validator = ClientSideValidator(shared_app)
        result = validator.validate(shared_factory.make_bad_hash())
        assert result.reason is RejectReason.HASH_MISMATCH

    def test_factory_shallow_rejected(self, shared_app, shared_factory):
        validator = ClientSideValidator(shared_app)
        result = validator.validate(shared_factory.make_shallow(depth=2))
        assert result.reason is RejectReason.TOO_SHALLOW

    def test_factory_non_nested_rejected(self, shared_app, shared_factory):
        validator = ClientSideValidator(shared_app)
        result = validator.validate(shared_factory.make_non_nested())
        assert result.reason is RejectReason.NOT_NESTED

    def test_factory_foreign_rejected(self, shared_app, shared_factory):
        validator = ClientSideValidator(shared_app)
        result = validator.validate(shared_factory.make_foreign())
        assert result.reason is RejectReason.HASH_MISMATCH

    def test_factory_trimmable_accepted_with_trim(self, shared_app, shared_factory):
        validator = ClientSideValidator(shared_app)
        sig = shared_factory.make_trimmable(depth=10, corrupt_below=6)
        result = validator.validate(sig)
        assert result.accepted
        assert all(t.outer.depth == 6 for t in result.signature.threads)
