"""Signature generalization tests (§III-D)."""

from repro.core.generalization import Generalizer, merge_signatures
from repro.core.history import DeadlockHistory
from repro.core.signature import (
    CallStack,
    DeadlockSignature,
    Frame,
    ORIGIN_LOCAL,
    ORIGIN_REMOTE,
    ThreadSignature,
)


def fr(method, line, cls="app.M"):
    return Frame(cls, method, line, "ee" * 8)


def manifestation(prefix_tags, origin=ORIGIN_REMOTE, common=6):
    """Two-thread signatures of the same bug: shared top `common` frames per
    thread, divergent frames below controlled by prefix_tags."""
    threads = []
    for t in range(2):
        shared = [fr(f"shared{t}_{i}", 100 * t + i) for i in range(common)]
        prefix = [fr(f"pre{tag}_{t}_{i}", 500 + i) for i, tag in enumerate(prefix_tags)]
        outer = CallStack(prefix + shared)
        inner = CallStack([fr(f"inner{t}", 900 + t)])
        threads.append(ThreadSignature(outer=outer, inner=inner))
    return DeadlockSignature(threads=tuple(threads), origin=origin)


class TestMergeSignatures:
    def test_merge_same_bug_takes_common_suffix(self):
        a = manifestation(["x"], common=6)
        b = manifestation(["y"], common=6)
        merged = merge_signatures(a, b)
        assert merged is not None
        assert all(t.outer.depth == 6 for t in merged.threads)
        assert merged.bug_key == a.bug_key

    def test_merge_different_bugs_refused(self):
        a = manifestation(["x"])
        # Different top frames entirely.
        threads = (
            ThreadSignature(outer=CallStack([fr("zz", 1)] * 6), inner=CallStack([fr("zi", 2)])),
            ThreadSignature(outer=CallStack([fr("ww", 3)] * 6), inner=CallStack([fr("wi", 4)])),
        )
        b = DeadlockSignature(threads=threads)
        assert merge_signatures(a, b) is None

    def test_remote_merge_respects_depth_floor(self):
        # Common suffix of depth 3 < 5: refuse when a remote sig is involved.
        a = manifestation(["x"], common=3, origin=ORIGIN_REMOTE)
        b = manifestation(["y"], common=3, origin=ORIGIN_REMOTE)
        assert merge_signatures(a, b) is None

    def test_local_merge_ignores_depth_floor(self):
        a = manifestation(["x"], common=3, origin=ORIGIN_LOCAL)
        b = manifestation(["y"], common=3, origin=ORIGIN_LOCAL)
        merged = merge_signatures(a, b)
        assert merged is not None
        assert merged.origin == ORIGIN_LOCAL
        assert all(t.outer.depth == 3 for t in merged.threads)

    def test_mixed_origin_result_is_remote(self):
        a = manifestation(["x"], common=6, origin=ORIGIN_LOCAL)
        b = manifestation(["y"], common=6, origin=ORIGIN_REMOTE)
        merged = merge_signatures(a, b)
        assert merged.origin == ORIGIN_REMOTE

    def test_merge_is_commutative_on_locations(self):
        a = manifestation(["x"], common=6)
        b = manifestation(["y"], common=6)
        ab = merge_signatures(a, b)
        ba = merge_signatures(b, a)
        assert ab.sig_id == ba.sig_id

    def test_merge_idempotent(self):
        a = manifestation(["x"])
        merged = merge_signatures(a, a)
        assert merged.sig_id == a.sig_id

    def test_merge_with_more_general_absorbs(self):
        specific = manifestation(["x"], common=6)
        general = merge_signatures(specific, manifestation(["y"], common=6))
        again = merge_signatures(general, specific)
        assert again.sig_id == general.sig_id


class TestMergeOnAppModel:
    def test_factory_mergeable_pair(self, shared_factory):
        a, b = shared_factory.make_mergeable_pair(depth_a=10, depth_b=8, common=6)
        merged = merge_signatures(a, b)
        assert merged is not None
        assert all(t.outer.depth == 6 for t in merged.threads)


class TestGeneralizer:
    def test_new_bug_added(self):
        history = DeadlockHistory()
        result = Generalizer(history).incorporate(manifestation(["x"]))
        assert result.outcome == "added"
        assert len(history) == 1

    def test_same_bug_merged_in_place(self):
        history = DeadlockHistory()
        gen = Generalizer(history)
        gen.incorporate(manifestation(["x"], common=6))
        result = gen.incorporate(manifestation(["y"], common=6))
        assert result.outcome == "merged"
        assert len(history) == 1  # "keep few signatures per deadlock bug"
        stored = history.snapshot()[0]
        assert all(t.outer.depth == 6 for t in stored.threads)

    def test_exact_duplicate(self):
        history = DeadlockHistory()
        gen = Generalizer(history)
        gen.incorporate(manifestation(["x"]))
        result = gen.incorporate(manifestation(["x"]))
        assert result.outcome == "duplicate"
        assert len(history) == 1

    def test_specialization_absorbed(self):
        history = DeadlockHistory()
        gen = Generalizer(history)
        general = merge_signatures(
            manifestation(["x"], common=6), manifestation(["y"], common=6)
        )
        gen.incorporate(general)
        result = gen.incorporate(manifestation(["z"], common=6))
        assert result.outcome in ("absorbed", "merged")
        assert len(history) == 1

    def test_unmergeable_same_bug_added_separately(self):
        # Remote sigs whose common suffix would drop below the depth floor
        # cannot merge; both stay in the history.
        history = DeadlockHistory()
        gen = Generalizer(history)
        gen.incorporate(manifestation(["x"], common=3, origin=ORIGIN_REMOTE))
        result = gen.incorporate(manifestation(["y"], common=3, origin=ORIGIN_REMOTE))
        assert result.outcome == "added"
        assert len(history) == 2

    def test_different_bugs_coexist(self):
        history = DeadlockHistory()
        gen = Generalizer(history)
        gen.incorporate(manifestation(["x"]))
        other = manifestation(["x"])
        threads = tuple(
            ThreadSignature(
                outer=CallStack([fr(f"other{t}", 50 + i) for i in range(6)]),
                inner=CallStack([fr(f"oi{t}", 70 + t)]),
            )
            for t in range(2)
        )
        gen.incorporate(DeadlockSignature(threads=threads))
        assert len(history) == 2
