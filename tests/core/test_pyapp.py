"""PythonAppAdapter tests: live-Python programs as validation targets."""

import repro.sim.workloads as workloads_mod
from repro.core.pyapp import PythonAppAdapter
from repro.core.signature import Frame
from repro.dimmunix.frames import python_code_hash
from repro.dimmunix.lock import DimmunixLock
from repro.dimmunix.runtime import DimmunixRuntime
from tests.conftest import make_fast_config


class TestRegistry:
    def test_module_functions_registered(self):
        adapter = PythonAppAdapter("app", [workloads_mod])
        # A method of a class in the module:
        frame = Frame(
            "repro.sim.workloads", "_t1_critical", 1,
            python_code_hash(
                workloads_mod.TwoLockProgram._t1_critical.__code__
            ),
        )
        assert adapter.frame_hash(frame) == frame.code_hash

    def test_unknown_frame_none(self):
        adapter = PythonAppAdapter("app", [workloads_mod])
        assert adapter.frame_hash(Frame("nowhere", "nothing", 1, "x")) is None

    def test_hash_matches_captured_frames(self):
        """Frames captured live must validate against the adapter — this is
        the property end-to-end distribution depends on."""
        runtime = DimmunixRuntime(config=make_fast_config())
        adapter = PythonAppAdapter(
            "app", [workloads_mod], runtime=runtime
        )
        from repro.sim.workloads import TwoLockProgram

        runtime.start()
        try:
            program = TwoLockProgram(runtime, "pyapp")
            result = program.run_once(collide=True)
            assert result.deadlocked
            sig = runtime.history.snapshot()[0]
            known = 0
            for thread in sig.threads:
                for frame in thread.outer:
                    expected = adapter.frame_hash(frame)
                    if expected is not None:
                        # Every frame the adapter can see must agree; local
                        # closures (e.g. thread bootstrap lambdas) are not
                        # enumerable and get trimmed by validation instead.
                        assert expected == frame.code_hash
                        known += 1
            assert known >= 10  # the named call-chain frames are all known
        finally:
            runtime.stop()

    def test_generation_bumps_on_refresh(self):
        adapter = PythonAppAdapter("app", [workloads_mod])
        g0 = adapter.generation
        adapter.refresh()
        assert adapter.generation == g0 + 1

    def test_add_module_extends_registry(self):
        import repro.sim.apps as apps_mod

        adapter = PythonAppAdapter("app", [workloads_mod])
        frame = Frame(
            "repro.sim.apps", "_spin", 1,
            python_code_hash(apps_mod._spin.__code__),
        )
        assert adapter.frame_hash(frame) is None
        adapter.add_module(apps_mod)
        assert adapter.frame_hash(frame) == frame.code_hash


class TestNestedSites:
    def test_runtime_discovery_flows_through(self):
        runtime = DimmunixRuntime(config=make_fast_config())
        adapter = PythonAppAdapter("app", [workloads_mod], runtime=runtime)
        assert adapter.nested_sync_sites() == set()
        import threading

        outer, inner = DimmunixLock(runtime), DimmunixLock(runtime)

        def op():
            with outer:
                with inner:
                    pass

        t = threading.Thread(target=op)
        t.start()
        t.join(2.0)
        assert len(adapter.nested_sync_sites()) == 1

    def test_persisted_sites_merged(self):
        adapter = PythonAppAdapter("app", [workloads_mod])
        adapter.register_nested_site(("m", "f", 3))
        assert ("m", "f", 3) in adapter.nested_sync_sites()

    def test_no_runtime_just_extra_sites(self):
        adapter = PythonAppAdapter(
            "app", [workloads_mod], extra_nested_sites={("m", "f", 1)}
        )
        assert adapter.nested_sync_sites() == {("m", "f", 1)}
