"""Property-based tests for the generalization algebra (§III-D)."""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.generalization import merge_signatures
from repro.core.signature import CallStack, DeadlockSignature, Frame, ThreadSignature

# Build manifestations of ONE fixed bug: shared suffix pool per thread slot,
# random divergent prefixes.  This gives merge_signatures real work while
# keeping bug keys equal.

_shared = [
    [Frame("app.M", f"s{t}_{i}", 100 * t + i, "aa" * 8) for i in range(8)]
    for t in range(2)
]

prefix_frames = st.lists(
    st.builds(
        Frame,
        class_name=st.just("app.M"),
        method=st.sampled_from(["pa", "pb", "pc"]),
        line=st.integers(min_value=1000, max_value=1010),
        code_hash=st.just("aa" * 8),
    ),
    max_size=4,
)


@st.composite
def same_bug_signatures(draw, origin="local"):
    threads = []
    for t in range(2):
        prefix = draw(prefix_frames)
        keep = draw(st.integers(min_value=1, max_value=8))
        outer = CallStack(prefix + _shared[t][-keep:])
        inner = CallStack([_shared[t][-1]])
        threads.append(ThreadSignature(outer=outer, inner=inner))
    return DeadlockSignature(threads=tuple(threads), origin=origin)


class TestMergeProperties:
    @given(same_bug_signatures(), same_bug_signatures())
    @settings(max_examples=100, deadline=None)
    def test_commutative(self, a, b):
        ab = merge_signatures(a, b)
        ba = merge_signatures(b, a)
        if ab is None:
            assert ba is None
        else:
            assert ab.sig_id == ba.sig_id

    @given(same_bug_signatures())
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, a):
        merged = merge_signatures(a, a)
        assert merged is not None
        assert merged.sig_id == a.sig_id

    @given(same_bug_signatures(), same_bug_signatures())
    @settings(max_examples=100, deadline=None)
    def test_merge_never_deepens(self, a, b):
        merged = merge_signatures(a, b)
        assume(merged is not None)
        for mt in merged.threads:
            assert mt.outer.depth <= max(
                max(t.outer.depth for t in a.threads),
                max(t.outer.depth for t in b.threads),
            )

    @given(same_bug_signatures(), same_bug_signatures())
    @settings(max_examples=100, deadline=None)
    def test_merged_matches_both_originals(self, a, b):
        """The generalized stacks must match every manifestation they came
        from — otherwise merging would lose protection."""
        merged = merge_signatures(a, b)
        assume(merged is not None)
        for sig in (a, b):
            for mt, ot in zip(
                sorted(merged.threads, key=lambda t: t.bug_key),
                sorted(sig.threads, key=lambda t: t.bug_key),
            ):
                assert mt.outer.matches(ot.outer)

    @given(same_bug_signatures(), same_bug_signatures())
    @settings(max_examples=100, deadline=None)
    def test_preserves_bug_key(self, a, b):
        merged = merge_signatures(a, b)
        assume(merged is not None)
        assert merged.bug_key == a.bug_key == b.bug_key

    @given(same_bug_signatures(origin="remote"), same_bug_signatures(origin="remote"))
    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_remote_results_respect_depth_floor(self, a, b):
        merged = merge_signatures(a, b)
        assume(merged is not None)
        assert all(t.outer.depth >= 5 for t in merged.threads)

    @given(same_bug_signatures(), same_bug_signatures(), same_bug_signatures())
    @settings(max_examples=60, deadline=None)
    def test_associative_on_locations(self, a, b, c):
        left = merge_signatures(a, b)
        right = merge_signatures(b, c)
        assume(left is not None and right is not None)
        lc = merge_signatures(left, c)
        ar = merge_signatures(a, right)
        assume(lc is not None and ar is not None)
        assert lc.sig_id == ar.sig_id
