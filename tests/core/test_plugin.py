"""Communix plugin tests (§III-B): hash attachment + upload."""

import time

from repro.core.history import DeadlockHistory
from repro.core.plugin import CommunixPlugin, attach_hashes
from repro.core.signature import (
    CallStack,
    DeadlockSignature,
    Frame,
    ORIGIN_LOCAL,
    ORIGIN_REMOTE,
    ThreadSignature,
)


class StubApp:
    name = "stub"
    generation = 0

    def __init__(self, hashes):
        self._hashes = hashes

    def frame_hash(self, frame):
        return self._hashes.get(frame.class_name)


def bare_sig(origin=ORIGIN_LOCAL, hashed=False):
    code_hash = "cc" * 8 if hashed else ""
    threads = tuple(
        ThreadSignature(
            outer=CallStack([Frame(f"app.K{t}", "outer", 10 + t, code_hash)]),
            inner=CallStack([Frame(f"app.K{t}", "inner", 20 + t, code_hash)]),
        )
        for t in range(2)
    )
    return DeadlockSignature(threads=threads, origin=origin)


class TestAttachHashes:
    def test_fills_missing_hashes(self):
        app = StubApp({"app.K0": "11" * 8, "app.K1": "22" * 8})
        annotated = attach_hashes(bare_sig(), app)
        hashes = {
            f.class_name: f.code_hash
            for t in annotated.threads
            for f in (*t.outer, *t.inner)
        }
        assert hashes == {"app.K0": "11" * 8, "app.K1": "22" * 8}

    def test_existing_hashes_kept(self):
        app = StubApp({"app.K0": "11" * 8, "app.K1": "22" * 8})
        annotated = attach_hashes(bare_sig(hashed=True), app)
        for t in annotated.threads:
            assert all(f.code_hash == "cc" * 8 for f in t.outer)

    def test_unknown_classes_stay_unhashed(self):
        annotated = attach_hashes(bare_sig(), StubApp({}))
        for t in annotated.threads:
            assert all(f.code_hash == "" for f in t.outer)


class TestPluginUpload:
    def _wait_for(self, predicate, timeout=2.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return predicate()

    def test_local_signature_uploaded_with_hashes(self):
        history = DeadlockHistory()
        uploads = []

        def uploader(sig, token):
            uploads.append((sig, token))
            return True

        app = StubApp({"app.K0": "11" * 8, "app.K1": "22" * 8})
        plugin = CommunixPlugin(history, app, uploader, "tok-1")
        try:
            history.add(bare_sig())
            assert self._wait_for(lambda: len(uploads) == 1)
            sig, token = uploads[0]
            assert token == "tok-1"
            assert all(
                f.code_hash for t in sig.threads for f in (*t.outer, *t.inner)
            )
            assert plugin.uploaded  # sig_id recorded
        finally:
            plugin.close()

    def test_remote_signatures_not_reuploaded(self):
        history = DeadlockHistory()
        uploads = []
        plugin = CommunixPlugin(
            history, StubApp({}), lambda s, t: uploads.append(s) or True, "tok"
        )
        try:
            history.add(bare_sig(origin=ORIGIN_REMOTE))
            time.sleep(0.15)
            assert uploads == []
        finally:
            plugin.close()

    def test_failed_upload_retried_on_flush(self):
        history = DeadlockHistory()
        attempts = []
        accept = {"now": False}

        def flaky(sig, token):
            attempts.append(sig.sig_id)
            return accept["now"]

        plugin = CommunixPlugin(history, StubApp({}), flaky, "tok")
        try:
            history.add(bare_sig())
            assert self._wait_for(lambda: len(plugin.failed_uploads) == 1)
            accept["now"] = True
            assert plugin.flush()
            assert not plugin.failed_uploads
            assert len(attempts) == 2
        finally:
            plugin.close()

    def test_uploader_exception_contained(self):
        history = DeadlockHistory()

        def exploding(sig, token):
            raise RuntimeError("network down")

        plugin = CommunixPlugin(history, StubApp({}), exploding, "tok")
        try:
            history.add(bare_sig())
            assert self._wait_for(lambda: len(plugin.failed_uploads) == 1)
        finally:
            plugin.close()

    def test_synchronous_mode(self):
        history = DeadlockHistory()
        uploads = []
        plugin = CommunixPlugin(
            history, StubApp({}), lambda s, t: uploads.append(s) or True,
            "tok", background=False,
        )
        history.add(bare_sig())
        assert len(uploads) == 1  # no worker, upload happened inline
        plugin.close()
