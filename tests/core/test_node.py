"""CommunixNode facade tests."""

import random

import pytest

import repro.sim.workloads as workloads_mod
from repro.client.endpoints import InProcessEndpoint
from repro.core.node import CommunixNode
from repro.core.pyapp import PythonAppAdapter
from repro.crypto.userid import UserIdAuthority
from repro.server.server import CommunixServer
from repro.util.clock import ManualClock
from tests.conftest import make_fast_config


@pytest.fixture
def server():
    return CommunixServer(
        authority=UserIdAuthority(rng=random.Random(14)),
        clock=ManualClock(start=1_000_000.0),
    )


def test_node_wires_all_components(server):
    node = CommunixNode("n1", None, InProcessEndpoint(server),
                        dimmunix_config=make_fast_config())
    try:
        assert node.history is node.runtime.history
        assert node.client.repository is node.repository
        assert node.user_token  # registered with the server
        decoded = server.authority.decode(node.user_token)
        assert decoded.user_id >= 1
    finally:
        node.close()


def test_locks_bound_to_node_runtime(server):
    node = CommunixNode("n2", None, InProcessEndpoint(server),
                        dimmunix_config=make_fast_config())
    try:
        node.start()
        with node.lock("a"):
            pass
        with node.rlock("r"):
            pass
        assert node.runtime.stats.acquisitions == 2
    finally:
        node.close()


def test_attach_app_rewires_agent_and_plugin(server):
    node = CommunixNode("n3", None, InProcessEndpoint(server),
                        dimmunix_config=make_fast_config())
    try:
        adapter = PythonAppAdapter("app", [workloads_mod],
                                   runtime=node.runtime)
        node.attach_app(adapter)
        assert node.app is adapter
        assert node.agent._app is adapter
    finally:
        node.close()


def test_context_manager_protocol(server):
    with CommunixNode("n4", None, InProcessEndpoint(server),
                      dimmunix_config=make_fast_config()) as node:
        assert node.runtime._detector is not None


def test_data_dir_layout(tmp_path, server, shared_factory):
    token = server.issue_user_token()
    server.process_add(shared_factory.make_valid().to_bytes(), token)
    node = CommunixNode("n5", None, InProcessEndpoint(server),
                        data_dir=tmp_path / "node5",
                        dimmunix_config=make_fast_config())
    try:
        node.sync_now()
        assert (tmp_path / "node5" / "repository.json").exists()
    finally:
        node.close()


def test_start_application_without_app_start_method(server):
    node = CommunixNode("n6", None, InProcessEndpoint(server),
                        dimmunix_config=make_fast_config())
    try:
        adapter = PythonAppAdapter("app", [workloads_mod],
                                   runtime=node.runtime)
        node.attach_app(adapter)
        report = node.start_application()  # adapter has no .start(); fine
        assert report.inspected == 0
    finally:
        node.close()
