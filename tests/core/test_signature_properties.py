"""Property-based tests over the signature algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signature import CallStack, DeadlockSignature, Frame, ThreadSignature

frames = st.builds(
    Frame,
    class_name=st.sampled_from(["app.A", "app.B", "lib.C"]),
    method=st.sampled_from(["f", "g", "h", "k"]),
    line=st.integers(min_value=1, max_value=50),
    code_hash=st.sampled_from(["aa" * 8, "bb" * 8]),
)

stacks = st.lists(frames, min_size=1, max_size=8).map(CallStack)
thread_sigs = st.builds(ThreadSignature, outer=stacks, inner=stacks)
signatures = st.lists(thread_sigs, min_size=2, max_size=3).map(
    lambda ts: DeadlockSignature(threads=tuple(ts))
)


class TestCallStackProperties:
    @given(stacks)
    @settings(max_examples=100)
    def test_stack_matches_itself(self, s):
        assert s.matches(s)

    @given(stacks, st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_suffix_always_matches_original(self, s, depth):
        suffix = s.suffix(depth)
        assert suffix.matches(s)

    @given(stacks, stacks)
    @settings(max_examples=100)
    def test_common_suffix_symmetric_in_locations(self, a, b):
        ab = a.common_suffix(b).locations()
        ba = b.common_suffix(a).locations()
        assert ab == ba

    @given(stacks, stacks)
    @settings(max_examples=100)
    def test_common_suffix_matches_both(self, a, b):
        common = a.common_suffix(b)
        if common:
            assert common.matches(a)
            assert common.matches(b)

    @given(stacks)
    @settings(max_examples=50)
    def test_common_suffix_idempotent(self, s):
        assert s.common_suffix(s) == s

    @given(stacks, stacks)
    @settings(max_examples=100)
    def test_common_suffix_no_longer_than_either(self, a, b):
        common = a.common_suffix(b)
        assert len(common) <= min(len(a), len(b))

    @given(stacks)
    @settings(max_examples=50)
    def test_encode_decode_round_trip(self, s):
        assert CallStack.decode(s.encode()) == s


class TestSignatureProperties:
    @given(signatures)
    @settings(max_examples=100)
    def test_serialization_preserves_identity(self, sig):
        decoded = DeadlockSignature.from_bytes(sig.to_bytes())
        assert decoded.sig_id == sig.sig_id
        assert decoded.bug_key == sig.bug_key

    @given(signatures)
    @settings(max_examples=100)
    def test_thread_permutation_invariance(self, sig):
        reordered = DeadlockSignature(threads=tuple(reversed(sig.threads)))
        assert reordered.sig_id == sig.sig_id

    @given(signatures)
    @settings(max_examples=100)
    def test_adjacency_irreflexive(self, sig):
        assert not sig.is_adjacent_to(sig)

    @given(signatures, signatures)
    @settings(max_examples=100)
    def test_adjacency_symmetric(self, a, b):
        assert a.is_adjacent_to(b) == b.is_adjacent_to(a)

    @given(signatures)
    @settings(max_examples=50)
    def test_size_is_signature_scale(self, sig):
        # Sanity bound: our wire signatures stay in the paper's size class
        # (the paper reports 1.7 KB); certainly under 64 KB.
        assert len(sig.to_bytes()) < 64 * 1024
