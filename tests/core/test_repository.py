"""Local repository tests (§III-B): incremental download + per-app cursors."""

import pytest

from repro.core.repository import LocalRepository
from repro.core.signature import ORIGIN_REMOTE
from repro.util.errors import HistoryError


@pytest.fixture
def sigs(shared_factory):
    return [shared_factory.make_valid() for _ in range(5)]


class TestAppend:
    def test_append_and_len(self, sigs):
        repo = LocalRepository()
        assert repo.append_from_server(sigs[:3]) == 3
        assert len(repo) == 3
        assert repo.server_index == 3

    def test_duplicates_not_stored_twice(self, sigs):
        repo = LocalRepository()
        repo.append_from_server(sigs[:2])
        added = repo.append_from_server(sigs[:3], next_server_index=3)
        assert added == 1
        assert len(repo) == 3

    def test_origin_forced_remote(self, sigs):
        repo = LocalRepository()
        repo.append_from_server([sigs[0].with_origin("local")])
        assert repo.signature_at(0).origin == ORIGIN_REMOTE

    def test_explicit_server_index(self, sigs):
        repo = LocalRepository()
        repo.append_from_server(sigs[:2], next_server_index=10)
        assert repo.server_index == 10
        # A later, smaller index never rewinds the cursor.
        repo.append_from_server([sigs[2]], next_server_index=4)
        assert repo.server_index == 10


class TestPerAppCursors:
    def test_new_signatures_start_at_cursor(self, sigs):
        repo = LocalRepository()
        repo.append_from_server(sigs[:4])
        batch = repo.new_signatures_for("appX")
        assert [i for i, _ in batch] == [0, 1, 2, 3]
        repo.advance_cursor("appX", 4)
        assert repo.new_signatures_for("appX") == []

    def test_each_signature_inspected_once(self, sigs):
        repo = LocalRepository()
        repo.append_from_server(sigs[:2])
        repo.advance_cursor("appX", 2)
        repo.append_from_server(sigs[2:4])
        batch = repo.new_signatures_for("appX")
        assert [i for i, _ in batch] == [2, 3]

    def test_cursors_independent_per_app(self, sigs):
        repo = LocalRepository()
        repo.append_from_server(sigs[:3])
        repo.advance_cursor("appX", 3)
        assert len(repo.new_signatures_for("appY")) == 3

    def test_cursor_never_rewinds(self, sigs):
        repo = LocalRepository()
        repo.append_from_server(sigs[:3])
        repo.advance_cursor("appX", 3)
        repo.advance_cursor("appX", 1)
        assert repo.get_cursor("appX") == 3


class TestPendingNesting:
    def test_round_trip(self):
        repo = LocalRepository()
        repo.set_pending_nesting("appX", [3, 1, 3])
        assert repo.pending_nesting("appX") == [1, 3]
        assert repo.pending_nesting("appY") == []


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, sigs):
        path = tmp_path / "repo.json"
        repo = LocalRepository(path=path)
        repo.append_from_server(sigs[:3], next_server_index=7)
        repo.advance_cursor("appX", 2)
        repo.set_pending_nesting("appX", [1])

        reloaded = LocalRepository(path=path)
        assert len(reloaded) == 3
        assert reloaded.server_index == 7
        assert reloaded.get_cursor("appX") == 2
        assert reloaded.pending_nesting("appX") == [1]
        assert reloaded.signature_at(0).sig_id == sigs[0].sig_id

    def test_cursor_bump_does_not_rewrite_signatures(self, tmp_path, sigs):
        """Regression for O(n) persistence: advance_cursor / pending-nesting
        updates must only touch the small sidecar, never re-encode the
        signature list."""
        path = tmp_path / "repo.json"
        repo = LocalRepository(path=path)
        repo.append_from_server(sigs, next_server_index=5)
        stat_before = path.stat()
        marker = (stat_before.st_mtime_ns, stat_before.st_ino, path.read_bytes())
        repo.advance_cursor("appX", 3)
        repo.set_pending_nesting("appX", [1, 2])
        stat_after = path.stat()
        assert (stat_after.st_mtime_ns, stat_after.st_ino,
                path.read_bytes()) == marker
        sidecar = tmp_path / "repo.json.state"
        assert sidecar.exists()
        reloaded = LocalRepository(path=path)
        assert reloaded.get_cursor("appX") == 3
        assert reloaded.pending_nesting("appX") == [1, 2]
        assert reloaded.server_index == 5

    def test_legacy_v1_file_loads(self, tmp_path, sigs):
        """Repositories written by the single-file format keep working."""
        import json

        path = tmp_path / "repo.json"
        payload = {
            "version": 1,
            "server_index": 9,
            "signatures": [s.encode() for s in sigs[:2]],
            "cursors": {"appX": 2},
            "pending_nesting": {"appX": [0]},
        }
        path.write_text(json.dumps(payload))
        repo = LocalRepository(path=path)
        assert len(repo) == 2
        assert repo.server_index == 9
        assert repo.get_cursor("appX") == 2
        assert repo.pending_nesting("appX") == [0]

    def test_v1_state_survives_restart_after_cursor_bump(self, tmp_path, sigs):
        """Regression: a cursor bump on a v1-loaded repository must not be
        shadowed by the stale inline state on the next load."""
        import json

        path = tmp_path / "repo.json"
        payload = {
            "version": 1,
            "server_index": 3,
            "signatures": [s.encode() for s in sigs[:3]],
            "cursors": {"app": 1},
            "pending_nesting": {},
        }
        path.write_text(json.dumps(payload))
        repo = LocalRepository(path=path)
        repo.advance_cursor("app", 3)
        reloaded = LocalRepository(path=path)
        assert reloaded.get_cursor("app") == 3
        assert reloaded.server_index == 3
        # The file was migrated to the split layout on first load.
        assert json.loads(path.read_text())["version"] == 2

    def test_missing_sidecar_defaults_to_signature_count(self, tmp_path, sigs):
        path = tmp_path / "repo.json"
        repo = LocalRepository(path=path)
        repo.append_from_server(sigs[:3])
        (tmp_path / "repo.json.state").unlink()
        reloaded = LocalRepository(path=path)
        assert len(reloaded) == 3
        assert reloaded.server_index == 3
        assert reloaded.get_cursor("appX") == 0

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "repo.json"
        path.write_text("not json at all {")
        with pytest.raises(HistoryError):
            LocalRepository(path=path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "repo.json"
        path.write_text('{"version": 42}')
        with pytest.raises(HistoryError):
            LocalRepository(path=path)
