"""Tests for frames, call stacks, and deadlock signatures."""

import pytest

from repro.core.signature import (
    CallStack,
    DeadlockSignature,
    Frame,
    ORIGIN_LOCAL,
    ORIGIN_REMOTE,
    ThreadSignature,
)
from repro.util.errors import ValidationError


def frame(cls="app.C", method="m", line=10, code_hash="aa" * 8) -> Frame:
    return Frame(cls, method, line, code_hash)


def stack(*locations) -> CallStack:
    return CallStack(
        Frame(cls, m, line, "ab" * 8) for cls, m, line in locations
    )


def two_thread_sig(origin=ORIGIN_LOCAL) -> DeadlockSignature:
    t1 = ThreadSignature(
        outer=stack(("app.A", "f", 1), ("app.A", "g", 2)),
        inner=stack(("app.A", "f", 1), ("app.A", "h", 3)),
    )
    t2 = ThreadSignature(
        outer=stack(("app.B", "p", 4), ("app.B", "q", 5)),
        inner=stack(("app.B", "p", 4), ("app.B", "r", 6)),
    )
    return DeadlockSignature(threads=(t1, t2), origin=origin)


class TestFrame:
    def test_encode_decode_round_trip(self):
        f = frame()
        assert Frame.decode(f.encode()) == f

    def test_decode_handles_dotted_class_names(self):
        f = Frame("com.example.Deep.Inner", "method", 42, "deadbeef")
        assert Frame.decode(f.encode()) == f

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValidationError):
            Frame.decode("not-a-frame")

    def test_location_excludes_hash(self):
        a = frame(code_hash="11" * 8)
        b = frame(code_hash="22" * 8)
        assert a.location == b.location
        assert a != b

    def test_with_hash(self):
        assert frame().with_hash("ff" * 8).code_hash == "ff" * 8


class TestCallStack:
    def test_top_is_last(self):
        s = stack(("a", "bottom", 1), ("a", "top", 2))
        assert s.top.method == "top"

    def test_empty_stack_has_no_top(self):
        with pytest.raises(ValidationError):
            CallStack().top

    def test_suffix_matching(self):
        runtime = stack(("a", "r0", 1), ("a", "r1", 2), ("a", "r2", 3))
        sig = stack(("a", "r1", 2), ("a", "r2", 3))
        assert sig.matches(runtime)
        assert runtime.matches(runtime)

    def test_matching_ignores_hashes(self):
        runtime = CallStack([Frame("a", "m", 1, "11" * 8)])
        sig = CallStack([Frame("a", "m", 1, "22" * 8)])
        assert sig.matches(runtime)

    def test_longer_signature_does_not_match(self):
        runtime = stack(("a", "m", 1))
        sig = stack(("a", "x", 0), ("a", "m", 1))
        assert not sig.matches(runtime)

    def test_mismatched_suffix(self):
        runtime = stack(("a", "r1", 2), ("a", "r2", 3))
        sig = stack(("a", "other", 9), ("a", "r2", 3))
        assert not sig.matches(runtime)

    def test_empty_signature_matches_nothing(self):
        assert not CallStack().matches(stack(("a", "m", 1)))

    def test_common_suffix(self):
        a = stack(("m", "x", 1), ("m", "shared", 5), ("m", "top", 9))
        b = stack(("m", "y", 2), ("m", "shared", 5), ("m", "top", 9))
        common = a.common_suffix(b)
        assert common.locations() == (("m", "shared", 5), ("m", "top", 9))

    def test_common_suffix_disjoint(self):
        a = stack(("m", "x", 1))
        b = stack(("m", "y", 2))
        assert a.common_suffix(b) == CallStack()

    def test_suffix_depth(self):
        s = stack(("a", "f", 1), ("a", "g", 2), ("a", "h", 3))
        assert s.suffix(2).locations() == (("a", "g", 2), ("a", "h", 3))
        assert s.suffix(99) == s
        assert s.suffix(0) == CallStack()

    def test_encode_decode(self):
        s = stack(("a", "f", 1), ("b", "g", 2))
        assert CallStack.decode(s.encode()) == s


class TestThreadSignature:
    def test_requires_non_empty_stacks(self):
        with pytest.raises(ValidationError):
            ThreadSignature(outer=CallStack(), inner=stack(("a", "m", 1)))

    def test_bug_key_is_top_pair(self):
        t = ThreadSignature(
            outer=stack(("a", "f", 1), ("a", "g", 2)),
            inner=stack(("a", "h", 3)),
        )
        assert t.bug_key == (("a", "g", 2), ("a", "h", 3))


class TestDeadlockSignature:
    def test_requires_two_threads(self):
        t = ThreadSignature(outer=stack(("a", "m", 1)), inner=stack(("a", "n", 2)))
        with pytest.raises(ValidationError):
            DeadlockSignature(threads=(t,))

    def test_thread_order_canonicalized(self):
        sig = two_thread_sig()
        flipped = DeadlockSignature(threads=tuple(reversed(sig.threads)))
        assert sig.sig_id == flipped.sig_id
        assert sig == flipped

    def test_origin_excluded_from_identity(self):
        local = two_thread_sig(ORIGIN_LOCAL)
        remote = two_thread_sig(ORIGIN_REMOTE)
        assert local.sig_id == remote.sig_id
        assert local.to_bytes() == remote.to_bytes()

    def test_serialization_round_trip(self):
        sig = two_thread_sig()
        decoded = DeadlockSignature.from_bytes(sig.to_bytes())
        assert decoded.sig_id == sig.sig_id
        assert decoded.origin == ORIGIN_REMOTE  # wire signatures are remote

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(ValidationError):
            DeadlockSignature.from_bytes(b"definitely not json")
        with pytest.raises(ValidationError):
            DeadlockSignature.from_bytes(b'{"version":2,"threads":[]}')

    def test_min_outer_depth(self):
        assert two_thread_sig().min_outer_depth == 2

    def test_top_frames(self):
        tops = two_thread_sig().top_frames
        assert ("app.A", "g", 2) in tops  # t1 outer top
        assert ("app.A", "h", 3) in tops  # t1 inner top
        assert len(tops) == 4

    def test_bug_key_groups_manifestations(self):
        a = two_thread_sig()
        b = DeadlockSignature(threads=tuple(reversed(a.threads)))
        assert a.bug_key == b.bug_key


class TestAdjacency:
    def test_identical_top_sets_not_adjacent(self):
        a, b = two_thread_sig(), two_thread_sig()
        assert not a.is_adjacent_to(b)

    def test_disjoint_not_adjacent(self):
        a = two_thread_sig()
        t1 = ThreadSignature(outer=stack(("z.Z", "u", 1)), inner=stack(("z.Z", "v", 2)))
        t2 = ThreadSignature(outer=stack(("z.Z", "w", 3)), inner=stack(("z.Z", "x", 4)))
        b = DeadlockSignature(threads=(t1, t2))
        assert not a.is_adjacent_to(b)

    def test_partial_overlap_is_adjacent(self):
        a = two_thread_sig()
        shared = a.threads[0]
        other = ThreadSignature(
            outer=stack(("new.C", "n", 7)), inner=stack(("new.C", "o", 8))
        )
        b = DeadlockSignature(threads=(shared, other))
        assert a.is_adjacent_to(b)
        assert b.is_adjacent_to(a)
