"""Endpoint URL parsing/formatting and the listen/dial helpers."""

import os
import socket

import pytest

from repro.net import (
    Endpoint,
    EndpointError,
    cleanup_listener,
    dial,
    format_endpoint,
    listen,
    parse_endpoint,
    tcp_endpoint,
    unix_endpoint,
)


class TestParseFormat:
    @pytest.mark.parametrize("url", [
        "tcp://127.0.0.1:7199",
        "tcp://0.0.0.0:0",
        "tcp://example.com:65535",
        "unix:///var/run/communix.sock",
        "unix:///tmp/x",
        "unix://@communix",
    ])
    def test_round_trip(self, url):
        endpoint = parse_endpoint(url)
        assert format_endpoint(endpoint) == url
        assert parse_endpoint(format_endpoint(endpoint)) == endpoint

    def test_tcp_fields(self):
        endpoint = parse_endpoint("tcp://10.1.2.3:81")
        assert endpoint.is_tcp and not endpoint.is_unix
        assert (endpoint.host, endpoint.port) == ("10.1.2.3", 81)
        assert endpoint.sockaddr() == ("10.1.2.3", 81)
        assert endpoint.family == socket.AF_INET

    def test_unix_fields(self):
        endpoint = parse_endpoint("unix:///run/x.sock")
        assert endpoint.is_unix and not endpoint.is_tcp
        assert endpoint.path == "/run/x.sock"
        assert endpoint.sockaddr() == "/run/x.sock"
        assert not endpoint.is_abstract

    def test_abstract_namespace(self):
        endpoint = parse_endpoint("unix://@communix-test")
        assert endpoint.is_abstract
        # The kernel-facing form carries the NUL prefix, the URL the @.
        assert endpoint.sockaddr() == "\0communix-test"
        assert endpoint.url() == "unix://@communix-test"

    def test_legacy_host_port(self):
        endpoint = parse_endpoint("127.0.0.1:7199")
        assert endpoint == tcp_endpoint("127.0.0.1", 7199)

    def test_tuple_and_endpoint_pass_through(self):
        endpoint = parse_endpoint(("localhost", 99))
        assert endpoint == tcp_endpoint("localhost", 99)
        assert parse_endpoint(endpoint) is endpoint

    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "nonsense",
        "tcp://",
        "tcp://hostonly",
        "tcp://host:notaport",
        "tcp://host:70000",
        "tcp://:7199",
        "unix://",
        "unix://relative/path",
        "unix:///",
        "unix://@",
        "http://host:80",
        42,
        ("only-one",),
    ])
    def test_invalid_addresses_raise(self, bad):
        with pytest.raises(EndpointError):
            parse_endpoint(bad)

    def test_constructors(self):
        assert tcp_endpoint().port == 0
        assert unix_endpoint("/tmp/a").url() == "unix:///tmp/a"


class TestListenDial:
    def test_tcp_ephemeral_port_resolved(self):
        sock, bound = listen(tcp_endpoint("127.0.0.1", 0))
        try:
            assert bound.port > 0
            assert sock.getsockname()[1] == bound.port
            assert not sock.getblocking()
        finally:
            sock.close()

    def test_unix_listen_dial_roundtrip(self, tmp_path):
        endpoint = unix_endpoint(str(tmp_path / "srv.sock"))
        sock, bound = listen(endpoint)
        try:
            assert bound == endpoint
            client = dial(endpoint, timeout=2.0)
            client.close()
        finally:
            sock.close()
            cleanup_listener(endpoint)
        assert not os.path.exists(endpoint.path)

    def test_stale_socket_file_removed_on_bind(self, tmp_path):
        """A dead server's leftover socket file must not block rebinding."""
        endpoint = unix_endpoint(str(tmp_path / "stale.sock"))
        sock, _ = listen(endpoint)
        sock.close()  # dies without cleanup: file stays behind
        assert os.path.exists(endpoint.path)
        sock2, _ = listen(endpoint)  # stale file is probed and removed
        try:
            dial(endpoint, timeout=2.0).close()
        finally:
            sock2.close()
            cleanup_listener(endpoint)

    def test_live_socket_refuses_second_bind(self, tmp_path):
        endpoint = unix_endpoint(str(tmp_path / "live.sock"))
        sock, _ = listen(endpoint)
        try:
            with pytest.raises(EndpointError, match="another server"):
                listen(endpoint)
        finally:
            sock.close()
            cleanup_listener(endpoint)

    def test_non_socket_file_refuses_bind(self, tmp_path):
        path = tmp_path / "notasocket"
        path.write_text("hello")
        with pytest.raises(EndpointError, match="not a socket"):
            listen(unix_endpoint(str(path)))
        assert path.exists()  # never deleted someone's real file

    def test_cleanup_listener_is_idempotent_and_scoped(self, tmp_path):
        endpoint = unix_endpoint(str(tmp_path / "gone.sock"))
        cleanup_listener(endpoint)  # nothing there: no error
        cleanup_listener(tcp_endpoint("127.0.0.1", 1))  # tcp: no-op
        cleanup_listener(parse_endpoint("unix://@abstract-x"))  # no file
