"""BufferPool: the zero-allocation receive path's buffer recycler."""

import threading

from repro.net import BufferPool


class TestBufferPool:
    def test_acquire_release_recycles(self):
        pool = BufferPool(1024)
        buf = pool.acquire()
        assert len(buf) == 1024
        assert pool.allocated == 1
        pool.release(buf)
        assert pool.free_count == 1
        again = pool.acquire()
        assert again is buf  # recycled, not reallocated
        assert pool.allocated == 1

    def test_steady_state_allocates_once(self):
        # The transport's read loop: acquire, recv_into, release — over
        # and over.  One buffer must serve forever.
        pool = BufferPool(64)
        for _ in range(1000):
            buf = pool.acquire()
            pool.release(buf)
        assert pool.allocated == 1

    def test_concurrent_borrowers_get_distinct_buffers(self):
        pool = BufferPool(32)
        a = pool.acquire()
        b = pool.acquire()
        assert a is not b
        assert pool.allocated == 2
        pool.release(a)
        pool.release(b)
        assert pool.free_count == 2

    def test_free_list_bounded(self):
        pool = BufferPool(16, max_free=2)
        bufs = [pool.acquire() for _ in range(5)]
        for buf in bufs:
            pool.release(buf)
        assert pool.free_count == 2  # the rest went back to the allocator

    def test_wrong_size_buffer_rejected(self):
        pool = BufferPool(64)
        pool.release(bytearray(63))  # silently dropped, not pooled
        assert pool.free_count == 0

    def test_thread_safety_smoke(self):
        pool = BufferPool(128, max_free=8)
        errors = []

        def worker():
            try:
                for _ in range(500):
                    buf = pool.acquire()
                    buf[0] = 1
                    pool.release(buf)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert pool.free_count <= 8
